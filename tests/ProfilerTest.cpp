//===- ProfilerTest.cpp - Self-profiler export tests ----------------------===//
//
// Covers obs::Profiler: the speedscope JSON export is structurally valid
// (schema URL, deduplicated frame table, evented profiles with balanced
// open/close events), the collapsed-stack export nests paths correctly,
// and both stay well-formed when the event stream is truncated the way a
// crash-flushed trace is (dangling opens, stray ends).
//
//===----------------------------------------------------------------------===//

#include "obs/Profiler.h"

#include "obs/ScopedTimer.h"
#include "obs/Trace.h"
#include "support/ThreadPool.h"

#include "TestJson.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

using namespace coderep;
using namespace coderep::obs;
using coderep::tests::JsonValidator;

namespace {

/// Splits the folded export into its "path<space>micros" lines.
std::vector<std::string> foldedPaths(const std::string &Folded) {
  std::vector<std::string> Paths;
  std::istringstream In(Folded);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t Space = Line.rfind(' ');
    EXPECT_NE(Space, std::string::npos) << Line;
    Paths.push_back(Line.substr(0, Space));
    // The sample count after the space must be a non-negative integer.
    for (size_t I = Space + 1; I < Line.size(); ++I)
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(Line[I]))) << Line;
  }
  return Paths;
}

TEST(ProfilerTest, SpeedscopeExportIsStructurallyValid) {
  TraceSink Sink;
  {
    ScopedTimer Compile(&Sink, "compile");
    {
      ScopedTimer Parse(&Sink, "parse");
    }
    {
      ScopedTimer Opt(&Sink, "optimize");
      ScopedTimer Inner(&Sink, "replicate");
    }
  }

  Profiler P(Sink);
  std::string Json = P.speedscopeJson();
  EXPECT_TRUE(JsonValidator(Json).validate()) << Json;
  // The fields a speedscope loader dereferences.
  EXPECT_NE(Json.find("\"$schema\": "
                      "\"https://www.speedscope.app/file-format-schema.json\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"shared\": {\"frames\": ["), std::string::npos);
  EXPECT_NE(Json.find("\"type\": \"evented\""), std::string::npos);
  EXPECT_NE(Json.find("\"activeProfileIndex\": 0"), std::string::npos);
  for (const char *Frame : {"compile", "parse", "optimize", "replicate"})
    EXPECT_NE(Json.find("\"name\": \"" + std::string(Frame) + "\""),
              std::string::npos)
        << Frame;
  // Balanced events: every O needs its C.
  size_t Opens = 0, Closes = 0, Pos = 0;
  while ((Pos = Json.find("\"type\": \"O\"", Pos)) != std::string::npos)
    ++Opens, ++Pos;
  Pos = 0;
  while ((Pos = Json.find("\"type\": \"C\"", Pos)) != std::string::npos)
    ++Closes, ++Pos;
  EXPECT_EQ(Opens, 4u);
  EXPECT_EQ(Opens, Closes);
}

TEST(ProfilerTest, CollapsedStacksNestPaths) {
  TraceSink Sink;
  {
    ScopedTimer Compile(&Sink, "compile");
    {
      ScopedTimer Opt(&Sink, "optimize");
      ScopedTimer Inner(&Sink, "replicate");
    }
  }

  Profiler P(Sink);
  std::vector<std::string> Paths = foldedPaths(P.collapsedStacks());
  // Each path is rooted at the track name ("thread 0" here) and the
  // deepest one must appear fully nested; FlameGraph separator is ';'.
  bool SawDeep = false;
  for (const std::string &Path : Paths) {
    if (Path == "thread 0;compile;optimize;replicate")
      SawDeep = true;
    EXPECT_EQ(Path.rfind("thread 0;compile", 0), 0u) << Path;
  }
  EXPECT_TRUE(SawDeep);
}

TEST(ProfilerTest, TruncatedStreamStillExports) {
  // A crash-flushed trace ends mid-span: opens without closes, and (after
  // a dropped buffer) possibly an end with no matching begin. The profiler
  // must still produce loadable output.
  TraceSink Sink;
  Sink.end("stray"); // no matching begin: dropped
  Sink.begin("compile");
  Sink.begin("optimize");
  // no ends: crash happened here

  Profiler P(Sink);
  std::string Json = P.speedscopeJson();
  EXPECT_TRUE(JsonValidator(Json).validate()) << Json;
  EXPECT_EQ(Json.find("\"name\": \"stray\""), std::string::npos);
  std::vector<std::string> Paths = foldedPaths(P.collapsedStacks());
  for (const std::string &Path : Paths)
    EXPECT_EQ(Path.rfind("thread 0;compile", 0), 0u) << Path;
}

TEST(ProfilerTest, MultiThreadTracksAreSeparated) {
  TraceSink Sink;
  ThreadPool Pool(4);
  Pool.parallelFor(8, [&](size_t I) {
    ScopedTimer T(&Sink, "task");
    (void)I;
  });

  Profiler P(Sink);
  std::string Json = P.speedscopeJson();
  EXPECT_TRUE(JsonValidator(Json).validate()) << Json;
  // One evented profile per participating thread, each named.
  size_t Profiles = 0, Pos = 0;
  while ((Pos = Json.find("\"type\": \"evented\"", Pos)) != std::string::npos)
    ++Profiles, ++Pos;
  EXPECT_GE(Profiles, 1u);
  EXPECT_NE(Json.find("\"unit\": \"microseconds\""), std::string::npos);
}

} // namespace
