//===- PropertyTest.cpp - Differential correctness properties -------------------===//
//
// The central correctness property of the whole system: optimization level
// and target choice must never change observable behaviour. Each random
// program is executed unoptimized (the reference) and then at
// SIMPLE/LOOPS/JUMPS on both targets; output, exit code and trap state
// must match everywhere. Structural properties of the replication pass
// (reducibility, verified CFGs, monotonically fewer unconditional jumps)
// are checked on the same corpus.
//
//===----------------------------------------------------------------------===//

#include "verify/RandomProgram.h"

#include "cfg/CfgAnalysis.h"
#include "cfg/FunctionPrinter.h"
#include "driver/Compiler.h"
#include "frontend/CodeGen.h"

#include <gtest/gtest.h>

using namespace coderep;
using namespace coderep::driver;

namespace {

struct Reference {
  std::string Output;
  int32_t ExitCode;
};

/// Runs the unoptimized front-end output.
Reference runReference(const std::string &Source) {
  cfg::Program P;
  std::string Err;
  EXPECT_TRUE(frontend::compileToRtl(Source, P, Err)) << Err;
  ease::RunOptions RO;
  ease::RunResult R = ease::run(P, RO);
  EXPECT_TRUE(R.ok()) << R.TrapMessage << "\n" << Source;
  return {R.Output, R.ExitCode};
}

class RandomDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDifferentialTest, AllConfigsAgree) {
  std::string Source = verify::randomProgram(GetParam());
  Reference Ref = runReference(Source);
  if (::testing::Test::HasFailure())
    return;

  for (target::TargetKind TK :
       {target::TargetKind::M68, target::TargetKind::Sparc}) {
    uint64_t Executed[3] = {0, 0, 0};
    for (opt::OptLevel Level :
         {opt::OptLevel::Simple, opt::OptLevel::Loops, opt::OptLevel::Jumps}) {
      Compilation C = compile(Source, TK, Level);
      ASSERT_TRUE(C.ok()) << C.Error;
      ease::RunOptions RO;
      ease::RunResult R = ease::run(*C.Prog, RO);
      ASSERT_TRUE(R.ok()) << "seed " << GetParam() << " target "
                          << static_cast<int>(TK) << " level "
                          << opt::optLevelName(Level) << ": "
                          << R.TrapMessage << "\n"
                          << Source;
      EXPECT_EQ(R.Output, Ref.Output)
          << "seed " << GetParam() << " level " << opt::optLevelName(Level)
          << "\n" << Source;
      EXPECT_EQ(R.ExitCode, Ref.ExitCode)
          << "seed " << GetParam() << " level " << opt::optLevelName(Level);

      // Structural properties.
      for (const auto &F : C.Prog->Functions) {
        F->verify();
        EXPECT_TRUE(cfg::isReducible(*F))
            << "irreducible " << F->Name << " at "
            << opt::optLevelName(Level);
      }
      Executed[static_cast<int>(Level)] = R.Stats.Executed;
    }
    // The paper's claim is dynamic: replication must not meaningfully
    // regress the executed instruction count, even on adversarial
    // programs where the growth budget cuts replication short and stub
    // jumps remain.
    EXPECT_LE(Executed[2], Executed[0] + Executed[0] / 10)
        << "seed " << GetParam();
    EXPECT_LE(Executed[1], Executed[0] + Executed[0] / 20)
        << "seed " << GetParam() << " (LOOPS)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDifferentialTest,
                         ::testing::Range<uint64_t>(1, 51));

} // namespace
