//===- RandomProgram.h - Random MiniC program generator ---------*- C++ -*-===//
//
// Part of the coderep project test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random, terminating, well-defined MiniC programs for
/// differential testing: the same program must produce identical output at
/// every optimization level on every target. Loops are always counted over
/// a dedicated variable the body never writes; divisions are guarded with
/// "| 1"; array indices are masked into range.
///
//===----------------------------------------------------------------------===//

#ifndef CODEREP_TESTS_RANDOMPROGRAM_H
#define CODEREP_TESTS_RANDOMPROGRAM_H

#include <cstdint>
#include <string>

namespace coderep::tests {

/// Returns the source of a random MiniC program for \p Seed.
std::string randomProgram(uint64_t Seed);

} // namespace coderep::tests

#endif // CODEREP_TESTS_RANDOMPROGRAM_H
