//===- ReplicationTest.cpp - LOOPS/JUMPS replication unit tests -------------------===//

#include "replicate/Replication.h"

#include "cfg/CfgAnalysis.h"
#include "ease/Interp.h"
#include "replicate/ShortestPaths.h"

#include <gtest/gtest.h>

using namespace coderep;
using namespace coderep::cfg;
using namespace coderep::replicate;
using namespace coderep::rtl;

namespace {

Operand vr(int N) { return Operand::reg(FirstVirtual + N); }

/// Counts static Jump RTLs.
int jumpCount(const Function &F) {
  int N = 0;
  for (int B = 0; B < F.size(); ++B)
    for (const Insn &I : F.block(B)->Insns)
      if (I.Op == Opcode::Jump)
        ++N;
  return N;
}

/// Allocates vregs so the interpreter's register file covers vr(0..15).
void reserveVRegs(Function &F) {
  while (F.vregLimit() < FirstVirtual + 16)
    F.freshVReg();
}

/// Wraps a hand-built function into a program and runs it.
int32_t execute(const Function &F) {
  Program P;
  P.Functions.push_back(F.clone());
  P.Functions.back()->Name = "main";
  ease::RunOptions RO;
  ease::RunResult R = ease::run(P, RO);
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return R.ExitCode;
}

/// While-loop shape: pre, header (test, exit), body (jump back), exit.
/// Computes sum 0..9 into RV.
std::unique_ptr<Function> whileLoop() {
  auto F = std::make_unique<Function>("w");
  int LH = F->freshLabel(), LB = F->freshLabel(), LE = F->freshLabel();
  BasicBlock *Pre = F->appendBlock();
  Pre->Insns = {Insn::move(Operand::reg(RegFP), Operand::reg(RegSP)),
                Insn::move(vr(0), Operand::imm(0)),
                Insn::move(vr(1), Operand::imm(0))};
  BasicBlock *H = F->appendBlockWithLabel(LH);
  H->Insns = {Insn::compare(vr(0), Operand::imm(10)),
              Insn::condJump(CondCode::Ge, LE)};
  BasicBlock *Body = F->appendBlockWithLabel(LB);
  Body->Insns = {Insn::binary(Opcode::Add, vr(1), vr(1), vr(0)),
                 Insn::binary(Opcode::Add, vr(0), vr(0), Operand::imm(1)),
                 Insn::jump(LH)};
  BasicBlock *Exit = F->appendBlockWithLabel(LE);
  Exit->Insns = {Insn::move(Operand::reg(RegRV), vr(1)),
                 Insn::move(Operand::reg(RegSP), Operand::reg(RegFP)),
                 Insn::ret()};
  reserveVRegs(*F);
  F->verify();
  return F;
}

/// For-loop shape: entry jump to the test at the bottom.
std::unique_ptr<Function> forLoop() {
  auto F = std::make_unique<Function>("f");
  int LB = F->freshLabel(), LT = F->freshLabel(), LE = F->freshLabel();
  BasicBlock *Pre = F->appendBlock();
  Pre->Insns = {Insn::move(Operand::reg(RegFP), Operand::reg(RegSP)),
                Insn::move(vr(0), Operand::imm(0)),
                Insn::move(vr(1), Operand::imm(0)), Insn::jump(LT)};
  BasicBlock *Body = F->appendBlockWithLabel(LB);
  Body->Insns = {Insn::binary(Opcode::Add, vr(1), vr(1), vr(0)),
                 Insn::binary(Opcode::Add, vr(0), vr(0), Operand::imm(1))};
  BasicBlock *Test = F->appendBlockWithLabel(LT);
  Test->Insns = {Insn::compare(vr(0), Operand::imm(10)),
                 Insn::condJump(CondCode::Lt, LB)};
  BasicBlock *Exit = F->appendBlockWithLabel(LE);
  Exit->Insns = {Insn::move(Operand::reg(RegRV), vr(1)),
                 Insn::move(Operand::reg(RegSP), Operand::reg(RegFP)),
                 Insn::ret()};
  reserveVRegs(*F);
  F->verify();
  return F;
}

TEST(ShortestPathsTest, EdgeCostIsSourceBlockRtls) {
  auto F = whileLoop();
  ShortestPaths SP(*F);
  // header -> body: cost of the header (2 RTLs).
  EXPECT_EQ(SP.cost(1, 2), 2);
  // header -> exit via branch: 2 as well.
  EXPECT_EQ(SP.cost(1, 3), 2);
  // body -> exit: body(3) + header(2).
  EXPECT_EQ(SP.cost(2, 3), 5);
}

TEST(ShortestPathsTest, PathReconstruction) {
  auto F = whileLoop();
  ShortestPaths SP(*F);
  EXPECT_EQ(SP.path(2, 3), (std::vector<int>{2, 1}));
  EXPECT_EQ(SP.path(1, 2), (std::vector<int>{1}));
  // Unreachable: exit has no successors.
  EXPECT_TRUE(SP.path(3, 1).empty());
}

TEST(ShortestPathsTest, CheapestReturnPath) {
  auto F = whileLoop();
  ShortestPaths SP(*F);
  std::vector<int> P = SP.path(2, 3);
  std::vector<int> R = SP.cheapestReturnPath(2);
  ASSERT_FALSE(R.empty());
  EXPECT_EQ(R.back(), 3); // ends at the return block
  // From the return block itself: just that block.
  EXPECT_EQ(SP.cheapestReturnPath(3), (std::vector<int>{3}));
}

TEST(ShortestPathsTest, IndirectJumpsExcluded) {
  auto F = whileLoop();
  // Replace the body's back jump with an indirect jump through a table.
  F->block(2)->Insns.back() =
      Insn::switchJump(vr(0), {F->block(1)->Label, F->block(3)->Label});
  F->verify();
  ShortestPaths SP(*F);
  // No path may leave the switch block.
  EXPECT_GE(SP.cost(2, 3), ShortestPaths::Inf);
  EXPECT_GE(SP.cost(2, 1), ShortestPaths::Inf);
}

TEST(LoopsReplication, RotatesWhileLoop) {
  auto F = whileLoop();
  int32_t Before = execute(*F);
  ReplicationStats Stats;
  EXPECT_TRUE(runLoops(*F, &Stats));
  F->verify();
  EXPECT_EQ(execute(*F), Before);
  EXPECT_EQ(jumpCount(*F), 0);
  EXPECT_EQ(Stats.JumpsReplaced, 1);
  EXPECT_TRUE(isReducible(*F));
}

TEST(LoopsReplication, RemovesForLoopEntryJump) {
  auto F = forLoop();
  int32_t Before = execute(*F);
  ReplicationStats Stats;
  EXPECT_TRUE(runLoops(*F, &Stats));
  F->verify();
  EXPECT_EQ(execute(*F), Before);
  EXPECT_EQ(jumpCount(*F), 0);
}

TEST(LoopsReplication, IgnoresNonLoopJumps) {
  // A plain if-else join jump is not LOOPS material.
  auto F = std::make_unique<Function>("g");
  int LElse = F->freshLabel(), LJoin = F->freshLabel();
  BasicBlock *B0 = F->appendBlock();
  B0->Insns = {Insn::move(Operand::reg(RegFP), Operand::reg(RegSP)),
               Insn::compare(vr(0), Operand::imm(0)),
               Insn::condJump(CondCode::Lt, LElse)};
  BasicBlock *Then = F->appendBlock();
  Then->Insns = {Insn::move(vr(1), Operand::imm(1)), Insn::jump(LJoin)};
  BasicBlock *Else = F->appendBlockWithLabel(LElse);
  Else->Insns = {Insn::move(vr(1), Operand::imm(2))};
  BasicBlock *Join = F->appendBlockWithLabel(LJoin);
  Join->Insns = {Insn::move(Operand::reg(RegRV), vr(1)),
                 Insn::move(Operand::reg(RegSP), Operand::reg(RegFP)),
                 Insn::ret()};
  reserveVRegs(*F);
  F->verify();
  EXPECT_FALSE(runLoops(*F));
  EXPECT_EQ(jumpCount(*F), 1);
}

TEST(JumpsReplication, ReplicatesIfElseJoin) {
  // The Table 2 situation: JUMPS duplicates the join/return.
  auto F = std::make_unique<Function>("g");
  int LElse = F->freshLabel(), LJoin = F->freshLabel();
  BasicBlock *B0 = F->appendBlock();
  B0->Insns = {Insn::move(Operand::reg(RegFP), Operand::reg(RegSP)),
               Insn::move(vr(0), Operand::imm(7)),
               Insn::compare(vr(0), Operand::imm(0)),
               Insn::condJump(CondCode::Lt, LElse)};
  BasicBlock *Then = F->appendBlock();
  Then->Insns = {Insn::move(vr(1), Operand::imm(1)), Insn::jump(LJoin)};
  BasicBlock *Else = F->appendBlockWithLabel(LElse);
  Else->Insns = {Insn::move(vr(1), Operand::imm(2))};
  BasicBlock *Join = F->appendBlockWithLabel(LJoin);
  Join->Insns = {Insn::move(Operand::reg(RegRV), vr(1)),
                 Insn::move(Operand::reg(RegSP), Operand::reg(RegFP)),
                 Insn::ret()};
  reserveVRegs(*F);
  F->verify();
  int32_t Before = execute(*F);

  ReplicationStats Stats;
  EXPECT_TRUE(runJumps(*F, {}, &Stats));
  F->verify();
  EXPECT_EQ(execute(*F), Before);
  EXPECT_EQ(jumpCount(*F), 0);
  EXPECT_EQ(Stats.JumpsReplaced, 1);
  // Two return blocks now exist.
  int Returns = 0;
  for (int B = 0; B < F->size(); ++B)
    if (F->block(B)->terminator() &&
        F->block(B)->terminator()->Op == Opcode::Return)
      ++Returns;
  EXPECT_EQ(Returns, 2);
}

TEST(JumpsReplication, HandlesWhileLoopLikeLoops) {
  auto F = whileLoop();
  int32_t Before = execute(*F);
  EXPECT_TRUE(runJumps(*F));
  F->verify();
  EXPECT_EQ(execute(*F), Before);
  EXPECT_EQ(jumpCount(*F), 0);
  EXPECT_TRUE(isReducible(*F));
}

TEST(JumpsReplication, BottomTestLoopCompletionEntersAtHeader) {
  // Regression test: a jump into a bottom-test loop's header must not
  // replicate the loop body ahead of the test (step 3 rotation).
  auto F = std::make_unique<Function>("bt");
  int LB = F->freshLabel(), LT = F->freshLabel(), LE = F->freshLabel();
  BasicBlock *Pre = F->appendBlock();
  Pre->Insns = {Insn::move(Operand::reg(RegFP), Operand::reg(RegSP)),
                Insn::move(vr(0), Operand::imm(100)), // i = 100: loop skipped
                Insn::move(vr(1), Operand::imm(0)),
                Insn::jump(LT)};
  BasicBlock *Body = F->appendBlockWithLabel(LB);
  Body->Insns = {Insn::binary(Opcode::Add, vr(1), vr(1), Operand::imm(1)),
                 Insn::binary(Opcode::Add, vr(0), vr(0), Operand::imm(1))};
  BasicBlock *Test = F->appendBlockWithLabel(LT); // header, positionally last
  Test->Insns = {Insn::compare(vr(0), Operand::imm(10)),
                 Insn::condJump(CondCode::Lt, LB)};
  BasicBlock *Exit = F->appendBlockWithLabel(LE);
  Exit->Insns = {Insn::move(Operand::reg(RegRV), vr(1)),
                 Insn::move(Operand::reg(RegSP), Operand::reg(RegFP)),
                 Insn::ret()};
  reserveVRegs(*F);
  F->verify();
  ASSERT_EQ(execute(*F), 0) << "loop must not run at all";

  runJumps(*F);
  F->verify();
  EXPECT_EQ(execute(*F), 0) << "replication must not execute the body";
}

TEST(JumpsReplication, SequenceLengthCapLimitsGrowth) {
  auto Unlimited = whileLoop();
  auto Capped = whileLoop();
  ReplicationOptions Tight;
  Tight.MaxSequenceRtls = 1; // nothing fits
  EXPECT_FALSE(runJumps(*Capped, Tight));
  EXPECT_EQ(Capped->rtlCount(), whileLoop()->rtlCount());
  EXPECT_TRUE(runJumps(*Unlimited));
  EXPECT_GE(Unlimited->rtlCount(), Capped->rtlCount());
}

TEST(JumpsReplication, GrowthBudgetRespected) {
  auto F = whileLoop();
  ReplicationOptions O;
  O.MaxGrowthFactor = 1.0; // baseline floor of 64 still allows small work
  O.GrowthBaselineRtls = F->rtlCount();
  int64_t Budget = static_cast<int64_t>(
      O.MaxGrowthFactor * std::max<int64_t>(F->rtlCount(), 64));
  runJumps(*F, O);
  EXPECT_LE(F->rtlCount(), Budget);
}

TEST(JumpsReplication, RemovesJumpToNext) {
  auto F = std::make_unique<Function>("jn");
  int LNext = F->freshLabel();
  BasicBlock *B0 = F->appendBlock();
  B0->Insns = {Insn::move(Operand::reg(RegRV), Operand::imm(1)),
               Insn::jump(LNext)};
  BasicBlock *B1 = F->appendBlockWithLabel(LNext);
  B1->Insns = {Insn::ret()};
  F->verify();
  EXPECT_TRUE(runJumps(*F));
  EXPECT_EQ(jumpCount(*F), 0);
  EXPECT_FALSE(F->block(0)->terminator());
}

TEST(JumpsReplication, SelfLoopSkipped) {
  // "Infinite loops do not provide any opportunity to replace the
  // unconditional branch."
  auto F = std::make_unique<Function>("inf");
  int L0 = F->freshLabel();
  BasicBlock *B0 = F->appendBlockWithLabel(L0);
  B0->Insns = {Insn::binary(Opcode::Add, vr(0), vr(0), Operand::imm(1)),
               Insn::jump(L0)};
  F->verify();
  EXPECT_FALSE(runJumps(*F));
  EXPECT_EQ(jumpCount(*F), 1);
}

TEST(JumpsReplication, IndirectEndingsExtension) {
  // Section 6: with AllowIndirectEndings, a jump to a block that computes
  // a switch index and jumps indirectly can be replaced; the copied
  // indirect jump shares the original jump table (targets keep their
  // original labels).
  auto build = [] {
    auto F = std::make_unique<Function>("sw");
    int LSel = F->freshLabel(), LA = F->freshLabel(), LB = F->freshLabel();
    BasicBlock *B0 = F->appendBlockWithLabel(F->freshLabel());
    B0->Insns = {Insn::move(Operand::reg(RegFP), Operand::reg(RegSP)),
                 Insn::move(vr(0), Operand::imm(1)), Insn::jump(LSel)};
    BasicBlock *Mid = F->appendBlock(); // makes LSel non-adjacent
    Mid->Insns = {Insn::move(vr(1), Operand::imm(5)), Insn::jump(LSel)};
    BasicBlock *Sel = F->appendBlockWithLabel(LSel);
    Sel->Insns = {Insn::binary(Opcode::And, vr(2), vr(0), Operand::imm(1)),
                  Insn::switchJump(vr(2), {LA, LB})};
    BasicBlock *A = F->appendBlockWithLabel(LA);
    A->Insns = {Insn::move(Operand::reg(RegRV), Operand::imm(10)),
                Insn::move(Operand::reg(RegSP), Operand::reg(RegFP)),
                Insn::ret()};
    BasicBlock *B = F->appendBlockWithLabel(LB);
    B->Insns = {Insn::move(Operand::reg(RegRV), Operand::imm(20)),
                Insn::move(Operand::reg(RegSP), Operand::reg(RegFP)),
                Insn::ret()};
    reserveVRegs(*F);
    F->verify();
    return F;
  };

  // Without the extension the jump to the switch block stays.
  auto Plain = build();
  int32_t Expected = execute(*Plain);
  runJumps(*Plain);
  EXPECT_GE(jumpCount(*Plain), 1);

  auto Extended = build();
  ReplicationOptions O;
  O.AllowIndirectEndings = true;
  ReplicationStats Stats;
  EXPECT_TRUE(runJumps(*Extended, O, &Stats));
  Extended->verify();
  EXPECT_EQ(execute(*Extended), Expected);
  EXPECT_EQ(jumpCount(*Extended), 0);
  EXPECT_TRUE(isReducible(*Extended));
}

TEST(JumpsReplication, ResultAlwaysReducible) {
  // Whatever JUMPS does to these shapes, step 6 guarantees reducibility.
  for (auto Make : {whileLoop, forLoop}) {
    auto F = Make();
    runJumps(*F);
    EXPECT_TRUE(isReducible(*F));
  }
}

TEST(JumpsReplication, StatsAreConsistent) {
  auto F = forLoop();
  ReplicationStats Stats;
  runJumps(*F, {}, &Stats);
  EXPECT_GE(Stats.JumpsReplaced, 1);
  EXPECT_GE(Stats.SkippedNoCandidate, 0);
  EXPECT_GE(Stats.RolledBackIrreducible, 0);
}

} // namespace
