//===- RtlArenaTest.cpp - SoA instruction arena unit tests --------------------===//
//
// The contracts the passes and the replication undo protocol lean on:
//
//  * InsnRef/InsnView stability - a ref (and a view's stream references)
//    stays valid across arbitrary arena growth, erases elsewhere, and
//    InsnSeq splices, until the slot itself is freed or rolled back;
//  * label-pool handles - SwitchJump tables live in the shared pool as
//    (offset, length) spans, survive same-arena clones and cross-arena
//    clones, and same-length overwrites reuse their span;
//  * free-list reuse - freed slots are recycled LIFO outside speculation
//    and never recycled inside it;
//  * the speculation protocol - watermark/rollback truncates every slot,
//    pool span and free-list entry created after the mark, and
//    commitSpeculation keeps them.
//
//===----------------------------------------------------------------------===//

#include "rtl/InsnArena.h"

#include <gtest/gtest.h>

using namespace coderep;
using namespace coderep::rtl;

namespace {

Insn addImm(int Dst, int Src, int K) {
  return Insn::binary(Opcode::Add, Operand::reg(Dst), Operand::reg(Src),
                      Operand::imm(K));
}

TEST(InsnArena, RefsAndViewsSurviveGrowth) {
  InsnArena A;
  InsnRef R = A.alloc(addImm(FirstVirtual, FirstVirtual, 7));
  InsnView V(A, R);
  // Force many chunk allocations.
  for (int I = 0; I < 5000; ++I)
    A.alloc(Insn(Opcode::Nop));
  EXPECT_EQ(V.Op, Opcode::Add);
  EXPECT_TRUE(V.Dst.isRegNo(FirstVirtual));
  EXPECT_EQ(V.Src2.Disp, 7);
  // The ref addresses the same slot through the accessors too.
  EXPECT_EQ(A.head(R).Op, Opcode::Add);
  V.Src2 = Operand::imm(9);
  EXPECT_EQ(A.src2(R).Disp, 9);
}

TEST(InsnArena, FreeListIsReusedLifoOutsideSpeculation) {
  InsnArena A;
  InsnRef R0 = A.alloc(Insn(Opcode::Nop));
  InsnRef R1 = A.alloc(Insn(Opcode::Nop));
  A.free(R0);
  A.free(R1);
  EXPECT_EQ(A.liveInsns(), 0u);
  // LIFO: the most recently freed slot comes back first.
  EXPECT_EQ(A.alloc(Insn(Opcode::Nop)), R1);
  EXPECT_EQ(A.alloc(Insn(Opcode::Nop)), R0);
  // No new slots were created.
  EXPECT_EQ(A.peakRefs(), 2u);
}

TEST(InsnArena, SpeculationIsAppendOnlyAndRollbackTruncates) {
  InsnArena A;
  InsnRef Kept = A.alloc(addImm(FirstVirtual, FirstVirtual, 1));
  InsnRef Freed = A.alloc(Insn(Opcode::Nop));
  A.free(Freed);

  A.beginSpeculation();
  InsnArena::Watermark W = A.watermark();
  // Append-only: the freed slot must NOT be recycled while speculating,
  // or rollback could not undo allocations by truncation.
  InsnRef Spec = A.alloc(Insn::switchJump(Operand::reg(FirstVirtual),
                                          {1, 2, 3, 4}));
  EXPECT_NE(Spec, Freed);
  EXPECT_GE(Spec, W.Slots);
  A.free(Kept); // speculative free: recorded, undone by rollback

  A.rollback(W);
  EXPECT_FALSE(A.speculating());
  // The speculative slot and its pool span are gone; the pre-mark state
  // (one live slot, one free-list entry) is back.
  EXPECT_EQ(A.watermark().Slots, W.Slots);
  EXPECT_EQ(A.watermark().PoolSize, W.PoolSize);
  EXPECT_EQ(A.watermark().FreeSlots, W.FreeSlots);
  EXPECT_EQ(A.head(Kept).Op, Opcode::Add);
}

TEST(InsnArena, CommitSpeculationKeepsAllocations) {
  InsnArena A;
  A.beginSpeculation();
  InsnRef R = A.alloc(addImm(FirstVirtual, FirstVirtual, 3));
  A.commitSpeculation();
  EXPECT_FALSE(A.speculating());
  EXPECT_EQ(A.head(R).Op, Opcode::Add);
  EXPECT_EQ(A.liveInsns(), 1u);
  // Back to normal allocation: frees are recycled again.
  A.free(R);
  EXPECT_EQ(A.alloc(Insn(Opcode::Nop)), R);
}

TEST(InsnArena, SwitchTablesLiveInThePool) {
  InsnArena A;
  InsnRef R =
      A.alloc(Insn::switchJump(Operand::reg(FirstVirtual), {10, 20, 30}));
  EXPECT_EQ(A.head(R).TableLen, 3u);
  EXPECT_EQ(A.poolBytes(), 3 * sizeof(int));
  Insn Out = A.get(R);
  EXPECT_EQ(Out.Table, (std::vector<int>{10, 20, 30}));

  // Same-length overwrite reuses the span (no pool growth).
  TableRef T(A, R);
  T = std::vector<int>{11, 21, 31};
  EXPECT_EQ(A.poolBytes(), 3 * sizeof(int));
  EXPECT_EQ(A.get(R).Table, (std::vector<int>{11, 21, 31}));

  // A different length allocates a fresh span.
  A.setTable(R, std::vector<int>{1, 2, 3, 4}.data(), 4);
  EXPECT_EQ(A.get(R).Table, (std::vector<int>{1, 2, 3, 4}));
}

TEST(InsnArena, CloneCopiesTableIntoFreshSpan) {
  InsnArena A;
  InsnRef R =
      A.alloc(Insn::switchJump(Operand::reg(FirstVirtual), {5, 6, 7}));
  InsnRef C = A.clone(R);
  ASSERT_NE(A.head(C).TableOff, A.head(R).TableOff);
  // Mutating the clone's table leaves the original untouched.
  TableRef(A, C)[0] = 99;
  EXPECT_EQ(A.get(R).Table[0], 5);
  EXPECT_EQ(A.get(C).Table[0], 99);

  // Cross-arena clone carries the table into the destination pool.
  InsnArena B;
  InsnRef X = B.cloneFrom(A, R);
  EXPECT_EQ(B.get(X).Table, (std::vector<int>{5, 6, 7}));
}

TEST(InsnArena, DeepCopyPreservesSlotNumbering) {
  InsnArena A;
  InsnRef R0 = A.alloc(addImm(FirstVirtual, FirstVirtual, 1));
  InsnRef R1 =
      A.alloc(Insn::switchJump(Operand::reg(FirstVirtual), {1, 2}));
  InsnArena B(A);
  // Refs recorded against A address the same instructions in B.
  EXPECT_EQ(B.head(R0).Op, Opcode::Add);
  EXPECT_EQ(B.get(R1).Table, (std::vector<int>{1, 2}));
  // The copies are independent.
  B.src2(R0) = Operand::imm(42);
  EXPECT_EQ(A.src2(R0).Disp, 1);
}

TEST(InsnSeq, EraseElsewhereAndSplicesKeepRefsValid) {
  InsnArena A;
  InsnSeq S(A);
  for (int I = 0; I < 8; ++I)
    S.push_back(addImm(FirstVirtual + I, FirstVirtual, I));
  InsnRef Watched = S.refs()[5];

  // Erase in front of the watched instruction: its ref (and contents)
  // survive, only its position shifts.
  S.erase(S.begin() + 1);
  EXPECT_EQ(S.refs()[4], Watched);
  EXPECT_EQ(A.src2(Watched).Disp, 5);

  // Splice the whole sequence into another block: zero instruction bytes
  // move, the very same slots change owner.
  InsnSeq D(A);
  D.push_back(Insn(Opcode::Nop));
  D.spliceBack(S);
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(D.refs()[5], Watched);
  EXPECT_EQ(A.src2(Watched).Disp, 5);
}

TEST(InsnSeq, DetachAttachTransfersOwnershipWithoutFreeing) {
  InsnArena A;
  InsnSeq S(A);
  S.push_back(addImm(FirstVirtual, FirstVirtual, 1));
  S.push_back(Insn::jump(3));
  InsnRef Jump = S.detachBack();
  EXPECT_EQ(S.size(), 1u);
  // The slot is still live (not on the free list).
  EXPECT_EQ(A.liveInsns(), 2u);
  EXPECT_EQ(A.head(Jump).Op, Opcode::Jump);

  InsnSeq D(A);
  D.attachBack(Jump);
  EXPECT_EQ(D.back().Op, Opcode::Jump);
}

TEST(InsnSeq, AppendClonesOfCopiesAcrossArenas) {
  InsnArena A;
  InsnSeq S(A);
  S.push_back(addImm(FirstVirtual, FirstVirtual, 4));
  S.push_back(Insn::switchJump(Operand::reg(FirstVirtual), {7, 8}));

  InsnArena B2;
  InsnSeq D(B2);
  D.appendClonesOf(S);
  ASSERT_EQ(D.size(), 2u);
  EXPECT_EQ(static_cast<Insn>(D[0]), static_cast<Insn>(S[0]));
  EXPECT_EQ(static_cast<Insn>(D[1]), static_cast<Insn>(S[1]));
}

TEST(InsnSeq, DestructionReturnsSlotsToTheFreeList) {
  InsnArena A;
  {
    InsnSeq S(A);
    S.push_back(Insn(Opcode::Nop));
    S.push_back(Insn(Opcode::Nop));
    EXPECT_EQ(A.liveInsns(), 2u);
  }
  EXPECT_EQ(A.liveInsns(), 0u);
  EXPECT_EQ(A.peakRefs(), 2u);
}

} // namespace
