//===- RtlTest.cpp - RTL IR unit tests ------------------------------------------===//

#include "rtl/Insn.h"

#include <gtest/gtest.h>

using namespace coderep;
using namespace coderep::rtl;

namespace {

TEST(Operand, Constructors) {
  Operand R = Operand::reg(5);
  EXPECT_TRUE(R.isReg());
  EXPECT_TRUE(R.isRegNo(5));
  EXPECT_FALSE(R.isRegNo(6));

  Operand I = Operand::imm(-42);
  EXPECT_TRUE(I.isImm());
  EXPECT_EQ(I.Disp, -42);

  Operand M = Operand::mem(RegFP, -8, 4);
  EXPECT_TRUE(M.isMem());
  EXPECT_EQ(M.Base, RegFP);
  EXPECT_EQ(M.Disp, -8);
  EXPECT_EQ(M.Size, 4);

  Operand None;
  EXPECT_TRUE(None.isNone());
}

TEST(Operand, Equality) {
  EXPECT_EQ(Operand::reg(3), Operand::reg(3));
  EXPECT_FALSE(Operand::reg(3) == Operand::reg(4));
  EXPECT_FALSE(Operand::reg(3) == Operand::imm(3));
  EXPECT_EQ(Operand::mem(1, 4, 4, 2, 4, -1), Operand::mem(1, 4, 4, 2, 4, -1));
  EXPECT_FALSE(Operand::mem(1, 4, 4) == Operand::mem(1, 4, 1));
  EXPECT_FALSE(Operand::mem(1, 4, 4, -1, 1, 0) ==
               Operand::mem(1, 4, 4, -1, 1, 1));
}

TEST(Operand, VirtualRegPredicate) {
  EXPECT_FALSE(isVirtualReg(RegSP));
  EXPECT_FALSE(isVirtualReg(FirstAllocatable));
  EXPECT_TRUE(isVirtualReg(FirstVirtual));
  EXPECT_TRUE(isVirtualReg(FirstVirtual + 100));
}

TEST(CondCode, NegateIsInvolution) {
  for (CondCode C : {CondCode::Eq, CondCode::Ne, CondCode::Lt, CondCode::Le,
                     CondCode::Gt, CondCode::Ge})
    EXPECT_EQ(negate(negate(C)), C);
  EXPECT_EQ(negate(CondCode::Lt), CondCode::Ge);
  EXPECT_EQ(negate(CondCode::Eq), CondCode::Ne);
  EXPECT_EQ(negate(CondCode::Le), CondCode::Gt);
}

TEST(CondCode, SwapOperands) {
  EXPECT_EQ(swapOperands(CondCode::Lt), CondCode::Gt);
  EXPECT_EQ(swapOperands(CondCode::Ge), CondCode::Le);
  EXPECT_EQ(swapOperands(CondCode::Eq), CondCode::Eq);
  EXPECT_EQ(swapOperands(CondCode::Ne), CondCode::Ne);
}

TEST(Insn, DefinedReg) {
  EXPECT_EQ(Insn::move(Operand::reg(7), Operand::imm(1)).definedReg(), 7);
  EXPECT_EQ(Insn::move(Operand::mem(RegFP, 0, 4), Operand::reg(7))
                .definedReg(),
            -1);
  EXPECT_EQ(Insn::compare(Operand::reg(7), Operand::imm(0)).definedReg(),
            RegCC);
  EXPECT_EQ(Insn::call(0).definedReg(), RegRV);
  EXPECT_EQ(Insn::jump(3).definedReg(), -1);
  EXPECT_EQ(Insn::lea(Operand::reg(9), Operand::mem(-1, 0, 4, -1, 1, 0))
                .definedReg(),
            9);
}

TEST(Insn, UsedRegs) {
  std::vector<int> Used;
  Insn::binary(Opcode::Add, Operand::reg(5), Operand::reg(6),
               Operand::mem(7, 0, 4, 8, 4))
      .appendUsedRegs(Used);
  EXPECT_EQ(Used, (std::vector<int>{6, 7, 8}));

  Used.clear();
  Insn Store = Insn::move(Operand::mem(7, 0, 4), Operand::reg(5));
  Store.appendUsedRegs(Used);
  EXPECT_EQ(Used, (std::vector<int>{7, 5}));

  Used.clear();
  Insn::condJump(CondCode::Lt, 3).appendUsedRegs(Used);
  EXPECT_EQ(Used, (std::vector<int>{RegCC}));

  Used.clear();
  Insn::ret().appendUsedRegs(Used);
  EXPECT_EQ(Used, (std::vector<int>{RegRV, RegSP, RegFP}));
}

TEST(Insn, MemoryEffects) {
  EXPECT_TRUE(Insn::move(Operand::mem(7, 0, 4), Operand::reg(5)).writesMem());
  EXPECT_TRUE(Insn::move(Operand::reg(5), Operand::mem(7, 0, 4)).readsMem());
  EXPECT_FALSE(
      Insn::move(Operand::reg(5), Operand::mem(7, 0, 4)).writesMem());
  // Lea forms an address but performs no access.
  Insn Lea = Insn::lea(Operand::reg(5), Operand::mem(7, 8, 4));
  EXPECT_FALSE(Lea.readsMem());
  EXPECT_FALSE(Lea.writesMem());
  // Calls conservatively do both.
  EXPECT_TRUE(Insn::call(0).readsMem());
  EXPECT_TRUE(Insn::call(0).writesMem());
}

TEST(Insn, StackPointerUpdatesAreSideEffects) {
  EXPECT_TRUE(Insn::binary(Opcode::Sub, Operand::reg(RegSP),
                           Operand::reg(RegSP), Operand::imm(8))
                  .hasSideEffects());
  EXPECT_TRUE(
      Insn::move(Operand::reg(RegFP), Operand::reg(RegSP)).hasSideEffects());
  EXPECT_FALSE(Insn::binary(Opcode::Add, Operand::reg(FirstVirtual),
                            Operand::reg(FirstVirtual), Operand::imm(1))
                   .hasSideEffects());
}

TEST(Insn, RenameUsesAndDefs) {
  Insn I = Insn::binary(Opcode::Add, Operand::reg(5), Operand::reg(5),
                        Operand::mem(5, 0, 4));
  I.renameUses(5, 9);
  // The definition keeps its register; uses (including the address base)
  // are renamed.
  EXPECT_EQ(I.Dst.Base, 5);
  EXPECT_EQ(I.Src1.Base, 9);
  EXPECT_EQ(I.Src2.Base, 9);
  I.renameDef(5, 9);
  EXPECT_EQ(I.Dst.Base, 9);
}

TEST(Insn, TransferPredicates) {
  EXPECT_TRUE(Insn::jump(0).isUnconditionalTransfer());
  EXPECT_TRUE(Insn::ret().isUnconditionalTransfer());
  EXPECT_FALSE(Insn::condJump(CondCode::Eq, 0).isUnconditionalTransfer());
  EXPECT_TRUE(Insn::condJump(CondCode::Eq, 0).isTransfer());
  EXPECT_FALSE(Insn::call(0).isTransfer()); // control returns
  EXPECT_TRUE(
      Insn::switchJump(Operand::reg(5), {1, 2}).isUnconditionalTransfer());
}

TEST(Insn, ToStringMatchesPaperNotation) {
  EXPECT_EQ(toString(Insn::jump(15)), "PC=L15;");
  EXPECT_EQ(toString(Insn::ret()), "PC=RT;");
  EXPECT_EQ(toString(Insn::condJump(CondCode::Ge, 16)), "PC=NZ>=0,L16;");
  EXPECT_EQ(toString(Insn::compare(Operand::reg(FirstVirtual),
                                   Operand::imm(5))),
            "NZ=v[0]?5;");
  Insn ByteMove = Insn::move(Operand::mem(4, 0, 1),
                             Operand::mem(4, 1, 1));
  EXPECT_EQ(toString(ByteMove), "B[r[4]]=B[r[4]+1];");
}

} // namespace
