//===- ServerTest.cpp - Compile-server protocol and daemon tests ----------===//
//
// Covers the codrepd building blocks end to end: the framed payload codec
// (round-trips, corrupt-frame rejection), the daemon core over a real
// Unix-domain socket (byte-identity with one-shot driver::compile, warm
// cache hits, compile and protocol error paths), and graceful drain
// (in-flight requests answered, listener closed, stats final).
//
// The CompileServer suite runs in the TSan CI matrix: the accept thread,
// reader threads, pool workers and the shared cache are exactly the
// cross-thread traffic TSan is for.
//
//===----------------------------------------------------------------------===//

#include "Suite.h"
#include "cfg/FunctionPrinter.h"
#include "driver/Compiler.h"
#include "server/Client.h"
#include "server/Server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace coderep;
using namespace coderep::bench;

namespace {

/// Socket paths live in /tmp (not ::testing::TempDir()): sun_path caps at
/// ~108 bytes and nested test dirs can blow it.
std::string tempSocket(const char *Tag) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "/tmp/coderep_srv_%ld_%s.sock",
                static_cast<long>(::getpid()), Tag);
  return Buf;
}

std::string oneShotRtl(const std::string &Source, target::TargetKind TK,
                       opt::OptLevel Level) {
  driver::Compilation C = driver::compile(Source, TK, Level);
  return C.ok() ? cfg::toString(*C.Prog) : std::string();
}

/// A server on a fresh socket with its own in-memory cache.
struct TestServer {
  cache::PipelineCache Cache;
  std::unique_ptr<server::CompileServer> Server;
  std::string Socket;

  explicit TestServer(const char *Tag, int Jobs = 2) : Socket(tempSocket(Tag)) {
    server::ServerOptions SO;
    SO.SocketPath = Socket;
    SO.Jobs = Jobs;
    SO.Cache = &Cache;
    Server = std::make_unique<server::CompileServer>(std::move(SO));
    std::string Err;
    EXPECT_TRUE(Server->start(Err)) << Err;
  }
  ~TestServer() {
    Server->requestStop();
    Server->wait();
    std::remove(Socket.c_str());
  }
};

TEST(ServerProtocol, RequestRoundTrip) {
  server::CompileRequest R;
  R.Name = "queens";
  R.Source = "int main() { return 7; }\n";
  R.Target = target::TargetKind::M68;
  R.Level = opt::OptLevel::Loops;
  R.MaxSequenceRtls = 12;
  R.MaxGrowthFactor = 3.25;
  R.MaxReplacements = 55;
  R.Heuristic = 2;
  R.AllowIndirectEndings = true;

  server::CompileRequest Out;
  std::string Err;
  ASSERT_TRUE(server::decodeRequest(server::encodeRequest(R), Out, Err))
      << Err;
  EXPECT_EQ(Out.Name, R.Name);
  EXPECT_EQ(Out.Source, R.Source);
  EXPECT_EQ(Out.Target, R.Target);
  EXPECT_EQ(Out.Level, R.Level);
  EXPECT_EQ(Out.MaxSequenceRtls, R.MaxSequenceRtls);
  EXPECT_DOUBLE_EQ(Out.MaxGrowthFactor, R.MaxGrowthFactor);
  EXPECT_EQ(Out.MaxReplacements, R.MaxReplacements);
  EXPECT_EQ(Out.Heuristic, R.Heuristic);
  EXPECT_EQ(Out.AllowIndirectEndings, R.AllowIndirectEndings);
}

TEST(ServerProtocol, ResponseRoundTrip) {
  server::CompileResponse R;
  R.Ok = true;
  R.Rtl = "function main\nblock L0\n";
  R.QueueUs = 17;
  R.CompileUs = 4242;
  R.FnCacheHits = 3;
  R.FnCacheMisses = 1;

  server::CompileResponse Out;
  std::string Err;
  ASSERT_TRUE(server::decodeResponse(server::encodeResponse(R), Out, Err))
      << Err;
  EXPECT_TRUE(Out.Ok);
  EXPECT_EQ(Out.Rtl, R.Rtl);
  EXPECT_EQ(Out.QueueUs, R.QueueUs);
  EXPECT_EQ(Out.CompileUs, R.CompileUs);
  EXPECT_EQ(Out.FnCacheHits, R.FnCacheHits);
  EXPECT_EQ(Out.FnCacheMisses, R.FnCacheMisses);

  server::CompileResponse E;
  E.Ok = false;
  E.Error = "parse error: line 3";
  ASSERT_TRUE(server::decodeResponse(server::encodeResponse(E), Out, Err));
  EXPECT_FALSE(Out.Ok);
  EXPECT_EQ(Out.Error, E.Error);
}

TEST(ServerProtocol, RejectsCorruptPayloads) {
  server::CompileRequest R;
  R.Source = "int main() { return 0; }";
  const std::string Good = server::encodeRequest(R);

  server::CompileRequest Out;
  std::string Err;
  // Wrong magic.
  EXPECT_FALSE(server::decodeRequest("coderep-nonsense 1\n", Out, Err));
  // Truncated mid-blob: every prefix must fail, not crash or misparse.
  for (size_t Cut : {size_t(0), size_t(5), Good.size() / 2, Good.size() - 1})
    EXPECT_FALSE(
        server::decodeRequest(Good.substr(0, Cut), Out, Err))
        << "prefix of " << Cut << " bytes";
  // Unknown target and out-of-range heuristic.
  std::string BadTarget = Good;
  size_t At = BadTarget.find("target sparc");
  ASSERT_NE(At, std::string::npos);
  BadTarget.replace(At, 12, "target vax!!");
  EXPECT_FALSE(server::decodeRequest(BadTarget, Out, Err));
  std::string BadHeur = Good;
  At = BadHeur.find("heuristic 0");
  ASSERT_NE(At, std::string::npos);
  BadHeur.replace(At, 11, "heuristic 9");
  EXPECT_FALSE(server::decodeRequest(BadHeur, Out, Err));
}

TEST(CompileServer, ServesByteIdenticalRtlAndWarmsCache) {
  TestServer TS("identity");
  server::Client Conn;
  std::string Err;
  ASSERT_TRUE(Conn.connect(TS.Socket, Err)) << Err;

  // Cold pass: every response must match the one-shot driver byte for
  // byte, on both targets.
  for (target::TargetKind TK :
       {target::TargetKind::Sparc, target::TargetKind::M68})
    for (size_t I = 0; I < 3; ++I) {
      const BenchProgram &BP = suite()[I];
      server::CompileRequest Req;
      Req.Name = BP.Name;
      Req.Source = BP.Source;
      Req.Target = TK;
      server::CompileResponse Resp;
      ASSERT_TRUE(Conn.roundtrip(Req, Resp, Err)) << Err;
      ASSERT_TRUE(Resp.Ok) << Resp.Error;
      EXPECT_EQ(Resp.Rtl, oneShotRtl(BP.Source, TK, opt::OptLevel::Jumps))
          << BP.Name;
      EXPECT_GT(Resp.FnCacheMisses, 0) << BP.Name;
    }

  // Warm pass: identical request, served from the shared cache.
  {
    const BenchProgram &BP = suite()[0];
    server::CompileRequest Req;
    Req.Name = BP.Name;
    Req.Source = BP.Source;
    server::CompileResponse Resp;
    ASSERT_TRUE(Conn.roundtrip(Req, Resp, Err)) << Err;
    ASSERT_TRUE(Resp.Ok) << Resp.Error;
    EXPECT_EQ(Resp.Rtl, oneShotRtl(BP.Source, target::TargetKind::Sparc,
                                   opt::OptLevel::Jumps));
    EXPECT_GT(Resp.FnCacheHits, 0);
    EXPECT_EQ(Resp.FnCacheMisses, 0);
  }
  EXPECT_GT(TS.Server->stats().hitRate(), 0.0);
}

TEST(CompileServer, RequestOptionsReachThePipeline) {
  TestServer TS("options");
  server::Client Conn;
  std::string Err;
  ASSERT_TRUE(Conn.connect(TS.Socket, Err)) << Err;

  const BenchProgram &BP = program("queens");
  server::CompileRequest Req;
  Req.Name = BP.Name;
  Req.Source = BP.Source;

  server::CompileResponse Jumps, Simple;
  ASSERT_TRUE(Conn.roundtrip(Req, Jumps, Err)) << Err;
  Req.Level = opt::OptLevel::Simple;
  ASSERT_TRUE(Conn.roundtrip(Req, Simple, Err)) << Err;
  ASSERT_TRUE(Jumps.Ok && Simple.Ok);
  // Different levels are different cache keys and different bytes.
  EXPECT_NE(Jumps.Rtl, Simple.Rtl);
  EXPECT_EQ(Simple.Rtl, oneShotRtl(BP.Source, target::TargetKind::Sparc,
                                   opt::OptLevel::Simple));
}

TEST(CompileServer, CompileErrorKeepsConnectionUsable) {
  TestServer TS("errors");
  server::Client Conn;
  std::string Err;
  ASSERT_TRUE(Conn.connect(TS.Socket, Err)) << Err;

  server::CompileRequest Bad;
  Bad.Name = "bad";
  Bad.Source = "int main( { this is not MiniC";
  server::CompileResponse Resp;
  ASSERT_TRUE(Conn.roundtrip(Bad, Resp, Err)) << Err;
  EXPECT_FALSE(Resp.Ok);
  EXPECT_FALSE(Resp.Error.empty());

  // The protocol survived; the same connection serves the next request.
  server::CompileRequest Good;
  Good.Name = "good";
  Good.Source = "int main() { return 5; }";
  ASSERT_TRUE(Conn.roundtrip(Good, Resp, Err)) << Err;
  EXPECT_TRUE(Resp.Ok) << Resp.Error;

  const server::ServerStats S = TS.Server->stats();
  EXPECT_EQ(S.RequestErrors, 1);
  EXPECT_EQ(S.RequestsServed, 2);
}

TEST(CompileServer, GarbageFrameGetsProtocolErrorResponse) {
  TestServer TS("garbage");
  std::string Err;
  server::Fd Raw = server::connectUnix(TS.Socket, Err);
  ASSERT_TRUE(Raw.valid()) << Err;
  ASSERT_TRUE(server::sendFrame(Raw.get(), "definitely not a request"));
  std::string Payload;
  ASSERT_TRUE(server::recvFrame(Raw.get(), Payload));
  server::CompileResponse Resp;
  ASSERT_TRUE(server::decodeResponse(Payload, Resp, Err)) << Err;
  EXPECT_FALSE(Resp.Ok);
  EXPECT_NE(Resp.Error.find("protocol error"), std::string::npos)
      << Resp.Error;
  Raw.reset();
  EXPECT_GE(TS.Server->stats().ProtocolErrors, 1);
}

TEST(CompileServer, ConcurrentTenantsShareOneCache) {
  TestServer TS("tenants", /*Jobs=*/4);
  const BenchProgram &BP = program("wc");
  const std::string Expected =
      oneShotRtl(BP.Source, target::TargetKind::Sparc, opt::OptLevel::Jumps);

  constexpr int Tenants = 4, PerTenant = 5;
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int T = 0; T < Tenants; ++T)
    Threads.emplace_back([&] {
      server::Client Conn;
      std::string Err;
      if (!Conn.connect(TS.Socket, Err)) {
        ++Failures;
        return;
      }
      for (int I = 0; I < PerTenant; ++I) {
        server::CompileRequest Req;
        Req.Name = BP.Name;
        Req.Source = BP.Source;
        server::CompileResponse Resp;
        if (!Conn.roundtrip(Req, Resp, Err) || !Resp.Ok ||
            Resp.Rtl != Expected)
          ++Failures;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);

  const server::ServerStats S = TS.Server->stats();
  EXPECT_EQ(S.RequestsServed, Tenants * PerTenant);
  EXPECT_EQ(S.ConnectionsAccepted, Tenants);
  // 20 identical requests: only the very first can miss.
  EXPECT_GT(S.hitRate(), 0.5);
  EXPECT_EQ(S.RequestUs.count(), Tenants * PerTenant);
}

TEST(CompileServer, GracefulDrainFinishesInFlightWork) {
  auto TS = std::make_unique<TestServer>("drain");
  const std::string Socket = TS->Socket;
  server::Client Conn;
  std::string Err;
  ASSERT_TRUE(Conn.connect(Socket, Err)) << Err;

  server::CompileRequest Req;
  Req.Name = "queens";
  Req.Source = program("queens").Source;
  server::CompileResponse Resp;
  ASSERT_TRUE(Conn.roundtrip(Req, Resp, Err)) << Err;
  ASSERT_TRUE(Resp.Ok);

  TS->Server->requestStop();
  TS->Server->wait();
  EXPECT_FALSE(TS->Server->running());
  EXPECT_EQ(TS->Server->stats().RequestsServed, 1);

  // The listener is gone: new tenants are refused.
  server::Client Late;
  EXPECT_FALSE(Late.connect(Socket, Err));

  // An idle drained connection reads EOF, not a torn frame.
  EXPECT_FALSE(Conn.roundtrip(Req, Resp, Err));
  TS.reset();
}

TEST(CompileServer, ServeLocalMatchesSocketPath) {
  TestServer TS("local");
  const BenchProgram &BP = program("cal");
  server::CompileRequest Req;
  Req.Name = BP.Name;
  Req.Source = BP.Source;

  server::CompileResponse Local = TS.Server->serveLocal(Req);
  ASSERT_TRUE(Local.Ok) << Local.Error;

  server::Client Conn;
  std::string Err;
  ASSERT_TRUE(Conn.connect(TS.Socket, Err)) << Err;
  server::CompileResponse Remote;
  ASSERT_TRUE(Conn.roundtrip(Req, Remote, Err)) << Err;
  ASSERT_TRUE(Remote.Ok) << Remote.Error;
  EXPECT_EQ(Local.Rtl, Remote.Rtl);
}

} // namespace
