//===- ShortestPathsTest.cpp - Lazy vs dense shortest-path oracle -------------===//
//
// The JUMPS planner trusts ShortestPaths completely: a wrong cost silently
// changes which sequences get replicated. The lazy per-source Dijkstra rows
// must therefore be bit-identical in cost to the dense Floyd-Warshall
// oracle on any flow graph the front end can produce, and every
// reconstructed path must be a real path whose RTL sum equals its cost.
//
//===----------------------------------------------------------------------===//

#include "verify/RandomProgram.h"

#include "cfg/Function.h"
#include "frontend/CodeGen.h"
#include "replicate/ShortestPaths.h"
#include "support/ThreadPool.h"
#include "target/Target.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>

using namespace coderep;
using namespace coderep::cfg;
using namespace coderep::rtl;
using replicate::ShortestPaths;
using replicate::ShortestPathsCache;

namespace {

Operand vr(int N) { return Operand::reg(FirstVirtual + N); }

/// Checks that \p P is a real path of \p F from \p From to \p To (without
/// To itself) and that the RTLs along it sum to exactly \p Cost.
void expectValidPath(const Function &F, const std::vector<int> &P, int From,
                     int To, int64_t Cost) {
  ASSERT_FALSE(P.empty());
  EXPECT_EQ(P.front(), From);
  int64_t Rtls = 0;
  for (size_t I = 0; I < P.size(); ++I) {
    EXPECT_NE(P[I], To);
    Rtls += F.block(P[I])->rtlCount();
    int Next = I + 1 < P.size() ? P[I + 1] : To;
    bool EdgeOk = false;
    F.forEachSuccessor(P[I], [&](int S) { EdgeOk |= S == Next; });
    EXPECT_TRUE(EdgeOk) << "missing edge " << P[I] << " -> " << Next;
  }
  EXPECT_EQ(Rtls, Cost);
}

TEST(ShortestPaths, LazyMatchesDenseOracleOnRandomCfgs) {
  int FunctionsChecked = 0;
  for (uint64_t Seed = 0; Seed < 200; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    Program P;
    std::string Err;
    ASSERT_TRUE(frontend::compileToRtl(verify::randomProgram(Seed), P, Err))
        << Err;
    auto T = target::createTarget(Seed % 2 ? target::TargetKind::M68
                                           : target::TargetKind::Sparc);
    for (auto &FPtr : P.Functions) {
      Function &F = *FPtr;
      T->legalizeFunction(F);
      if (F.size() < 2)
        continue;
      ++FunctionsChecked;
      ShortestPaths Lazy(F, ShortestPaths::Strategy::Lazy);
      ShortestPaths Dense(F, ShortestPaths::Strategy::Dense);
      EXPECT_EQ(Dense.rowsComputed(), F.size());
      for (int U = 0; U < F.size(); ++U)
        for (int V = 0; V < F.size(); ++V) {
          if (U == V)
            continue;
          ASSERT_EQ(Lazy.cost(U, V), Dense.cost(U, V))
              << "cost mismatch " << U << " -> " << V << " in " << F.Name;
          if (Lazy.cost(U, V) < ShortestPaths::Inf) {
            expectValidPath(F, Lazy.path(U, V), U, V, Lazy.cost(U, V));
            expectValidPath(F, Dense.path(U, V), U, V, Dense.cost(U, V));
          }
        }
      EXPECT_LE(Lazy.rowsComputed(), F.size());
    }
  }
  // The corpus must actually exercise the comparison.
  EXPECT_GT(FunctionsChecked, 100);
}

/// A diamond whose two arms cost the same: 0 -> {1, 2} -> 3. Equal-cost
/// ties must break deterministically (towards the lower block index), and
/// path() must reconstruct the chosen arm exactly.
TEST(ShortestPaths, DiamondTieBreaksDeterministically) {
  Function F("diamond");
  int L1 = F.freshLabel(), L2 = F.freshLabel(), L3 = F.freshLabel(),
      L0 = F.freshLabel();
  BasicBlock *B0 = F.appendBlockWithLabel(L0);
  B0->Insns.push_back(Insn::compare(vr(0), Operand::imm(0)));
  B0->Insns.push_back(Insn::condJump(CondCode::Lt, L2));
  BasicBlock *B1 = F.appendBlockWithLabel(L1);
  B1->Insns.push_back(Insn::move(vr(1), Operand::imm(1)));
  B1->Insns.push_back(Insn::jump(L3));
  BasicBlock *B2 = F.appendBlockWithLabel(L2);
  B2->Insns.push_back(Insn::move(vr(1), Operand::imm(2)));
  B2->Insns.push_back(Insn::jump(L3));
  BasicBlock *B3 = F.appendBlockWithLabel(L3);
  B3->Insns.push_back(Insn::ret());

  ShortestPaths Lazy(F);
  ShortestPaths Dense(F, ShortestPaths::Strategy::Dense);
  // Both arms cost rtl(B0) + rtl(arm) = 2 + 2.
  EXPECT_EQ(Lazy.cost(0, 3), 4);
  EXPECT_EQ(Dense.cost(0, 3), Lazy.cost(0, 3));
  // The tie breaks towards block 1, and repeated reconstruction agrees.
  std::vector<int> P = Lazy.path(0, 3);
  EXPECT_EQ(P, (std::vector<int>{0, 1}));
  EXPECT_EQ(Lazy.path(0, 3), P);
  expectValidPath(F, P, 0, 3, 4);
  // Single-hop rows too.
  EXPECT_EQ(Lazy.path(1, 3), (std::vector<int>{1}));
  EXPECT_EQ(Lazy.cost(1, 3), 2);
}

TEST(ShortestPathsCache, FingerprintCatchesInPlaceEdits) {
  Function F("cached");
  int L1 = F.freshLabel(), L0 = F.freshLabel();
  BasicBlock *B0 = F.appendBlockWithLabel(L0);
  B0->Insns.push_back(Insn::move(vr(0), Operand::imm(7)));
  BasicBlock *B1 = F.appendBlockWithLabel(L1);
  B1->Insns.push_back(Insn::move(vr(1), Operand::imm(8)));
  B1->Insns.push_back(Insn::ret());

  ShortestPathsCache Cache;
  ShortestPaths &A = Cache.get(F);
  EXPECT_EQ(Cache.misses(), 1);
  EXPECT_EQ(&Cache.get(F), &A);
  EXPECT_EQ(Cache.hits(), 1);

  // An in-place instruction edit never goes through the block-list
  // mutators, so only the fingerprint can notice it.
  B0->Insns.push_back(Insn::move(vr(2), Operand::imm(9)));
  Cache.get(F);
  EXPECT_EQ(Cache.misses(), 2);
  EXPECT_EQ(Cache.hits(), 1);

  // Same block count and RTL counts, different edge: retarget a jump.
  B0->Insns.push_back(Insn::jump(L1));
  Cache.get(F);
  int Misses = Cache.misses();
  B0->Insns.back().Target = L0; // now a self loop
  Cache.get(F);
  EXPECT_EQ(Cache.misses(), Misses + 1);

  Cache.invalidate();
  Cache.get(F);
  EXPECT_EQ(Cache.misses(), Misses + 2);
}

TEST(ThreadPool, StressSubmitAndParallelFor) {
  ThreadPool Pool(4);
  std::atomic<int64_t> Sum{0};
  std::vector<std::future<int>> Futures;
  for (int I = 0; I < 1000; ++I)
    Futures.push_back(Pool.submit([I, &Sum] {
      Sum += I;
      return I * 2;
    }));
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(Futures[I].get(), I * 2);
  EXPECT_EQ(Sum.load(), 999 * 1000 / 2);

  std::vector<int64_t> Out(10000, 0);
  Pool.parallelFor(Out.size(), [&](size_t I) {
    Out[I] = static_cast<int64_t>(I) * static_cast<int64_t>(I);
  });
  for (size_t I = 0; I < Out.size(); ++I)
    ASSERT_EQ(Out[I], static_cast<int64_t>(I) * static_cast<int64_t>(I));

  // A pool with an explicit single worker still drains everything.
  ThreadPool One(1);
  std::atomic<int> Count{0};
  One.parallelFor(257, [&](size_t) { ++Count; });
  EXPECT_EQ(Count.load(), 257);
}

} // namespace
