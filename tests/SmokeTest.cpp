//===- SmokeTest.cpp - End-to-end pipeline smoke tests -------------------------===//
//
// Compiles and runs small MiniC programs at every optimization level on
// both targets, checking output and exit codes. If these fail, nothing
// else is trustworthy.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <gtest/gtest.h>

using namespace coderep;
using namespace coderep::driver;

namespace {

struct Config {
  target::TargetKind TK;
  opt::OptLevel Level;
};

class SmokeTest : public ::testing::TestWithParam<Config> {};

TEST_P(SmokeTest, ReturnsConstant) {
  ease::RunResult R = compileAndRun("int main() { return 42; }",
                                    GetParam().TK, GetParam().Level);
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitCode, 42);
}

TEST_P(SmokeTest, WhileLoopSum) {
  const char *Src = R"(
    int main() {
      int i, sum;
      sum = 0;
      i = 1;
      while (i <= 10) {
        sum = sum + i;
        i = i + 1;
      }
      return sum;
    }
  )";
  ease::RunResult R = compileAndRun(Src, GetParam().TK, GetParam().Level);
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitCode, 55);
}

TEST_P(SmokeTest, ForLoopArray) {
  const char *Src = R"(
    int a[10];
    int main() {
      int i, sum;
      for (i = 0; i < 10; i++)
        a[i] = i * i;
      sum = 0;
      for (i = 0; i < 10; i++)
        sum += a[i];
      return sum;
    }
  )";
  ease::RunResult R = compileAndRun(Src, GetParam().TK, GetParam().Level);
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitCode, 285);
}

TEST_P(SmokeTest, IfElseAndOutput) {
  const char *Src = R"(
    int classify(int x) {
      if (x > 5)
        return x / 2;
      else
        return x * 3;
    }
    int main() {
      printf("%d %d\n", classify(10), classify(3));
      return 0;
    }
  )";
  ease::RunResult R = compileAndRun(Src, GetParam().TK, GetParam().Level);
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.Output, "5 9\n");
}

TEST_P(SmokeTest, RecursionAndStrings) {
  const char *Src = R"(
    int fib(int n) {
      if (n < 2) return n;
      return fib(n - 1) + fib(n - 2);
    }
    char msg[32];
    int main() {
      strcpy(msg, "fib");
      printf("%s(%d)=%d\n", msg, 10, fib(10));
      return strlen(msg);
    }
  )";
  ease::RunResult R = compileAndRun(Src, GetParam().TK, GetParam().Level);
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.Output, "fib(10)=55\n");
  EXPECT_EQ(R.ExitCode, 3);
}

TEST_P(SmokeTest, GetcharEcho) {
  const char *Src = R"(
    int main() {
      int c, n;
      n = 0;
      while ((c = getchar()) != -1) {
        putchar(c);
        n++;
      }
      return n;
    }
  )";
  ease::RunResult R =
      compileAndRun(Src, GetParam().TK, GetParam().Level, "hello");
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.Output, "hello");
  EXPECT_EQ(R.ExitCode, 5);
}

TEST_P(SmokeTest, SwitchDense) {
  const char *Src = R"(
    int name(int d) {
      switch (d) {
      case 0: return 100;
      case 1: return 101;
      case 2: return 102;
      case 3: return 103;
      case 4: return 104;
      case 5: return 105;
      default: return -1;
      }
    }
    int main() {
      return name(3) - name(0) + name(9);
    }
  )";
  ease::RunResult R = compileAndRun(Src, GetParam().TK, GetParam().Level);
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitCode, 2);
}

TEST_P(SmokeTest, GotoMidLoopExit) {
  // Table 1's shape: the exit condition in the middle of a loop.
  const char *Src = R"(
    int x[64];
    int n;
    int main() {
      int i;
      n = 20;
      for (i = 0; i < 64; i++)
        x[i] = i;
      i = 1;
      do {
        if (i >= n)
          goto done;
        x[i - 1] = x[i];
        i++;
      } while (1);
    done:
      return x[0] + x[18];
    }
  )";
  ease::RunResult R = compileAndRun(Src, GetParam().TK, GetParam().Level);
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitCode, 1 + 19);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SmokeTest,
    ::testing::Values(Config{target::TargetKind::M68, opt::OptLevel::Simple},
                      Config{target::TargetKind::M68, opt::OptLevel::Loops},
                      Config{target::TargetKind::M68, opt::OptLevel::Jumps},
                      Config{target::TargetKind::Sparc, opt::OptLevel::Simple},
                      Config{target::TargetKind::Sparc, opt::OptLevel::Loops},
                      Config{target::TargetKind::Sparc, opt::OptLevel::Jumps}),
    [](const ::testing::TestParamInfo<Config> &Info) {
      std::string Name =
          Info.param.TK == target::TargetKind::M68 ? "M68" : "Sparc";
      Name += coderep::opt::optLevelName(Info.param.Level);
      return Name;
    });

} // namespace
