//===- SupportTest.cpp - Support library unit tests --------------------------------===//

#include "support/BitVec.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace coderep;

namespace {

TEST(Format, Printf) {
  EXPECT_EQ(format("%d-%s-%02x", 42, "ab", 7), "42-ab-07");
  EXPECT_EQ(format("empty"), "empty");
  // Long outputs are not truncated.
  std::string Long = format("%0200d", 1);
  EXPECT_EQ(Long.size(), 200u);
}

TEST(Format, SignedPercent) {
  EXPECT_EQ(signedPercent(3.456), "+3.46%");
  EXPECT_EQ(signedPercent(-0.004), "-0.00%");
  EXPECT_EQ(signedPercent(0), "+0.00%");
}

TEST(Format, PercentChange) {
  EXPECT_EQ(percentChange(150, 100), "+50.00%");
  EXPECT_EQ(percentChange(94, 100), "-6.00%");
  EXPECT_EQ(percentChange(5, 0), "n/a");
}

TEST(Format, TextTableAlignsColumns) {
  TextTable T;
  T.addRow({"a", "bbbb"});
  T.addSeparator();
  T.addRow({"cccc", "d"});
  std::string Out = T.render();
  EXPECT_EQ(Out, "a     bbbb\n"
                 "------------\n"
                 "cccc  d\n");
}

TEST(BitVec, SetResetTest) {
  BitVec V(130);
  EXPECT_FALSE(V.any());
  V.set(0);
  V.set(64);
  V.set(129);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(129));
  EXPECT_FALSE(V.test(63));
  V.reset(64);
  EXPECT_FALSE(V.test(64));
  EXPECT_TRUE(V.any());
}

TEST(BitVec, UnionReportsChange) {
  BitVec A(100), B(100);
  B.set(7);
  B.set(70);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_FALSE(A.unionWith(B)); // second time: no change
  EXPECT_TRUE(A.test(7) && A.test(70));
}

TEST(BitVec, SubtractAndEquality) {
  BitVec A(100), B(100);
  A.set(1);
  A.set(2);
  B.set(2);
  A.subtract(B);
  EXPECT_TRUE(A.test(1));
  EXPECT_FALSE(A.test(2));
  BitVec C(100);
  C.set(1);
  EXPECT_TRUE(A == C);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, RangeBounds) {
  Rng R(99);
  std::set<int64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.range(-3, 5);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 5);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 9u); // all values hit
}

TEST(Rng, ZeroSeedStillWorks) {
  Rng R(0);
  EXPECT_NE(R.next(), 0u);
}

} // namespace
