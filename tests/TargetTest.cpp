//===- TargetTest.cpp - Machine description unit tests -----------------------------===//

#include "target/Target.h"

#include "driver/Compiler.h"
#include "ease/Interp.h"
#include "frontend/CodeGen.h"
#include "target/M68Target.h"
#include "target/SparcTarget.h"

#include <gtest/gtest.h>

using namespace coderep;
using namespace coderep::cfg;
using namespace coderep::rtl;
using namespace coderep::target;

namespace {

Operand vr(int N) { return Operand::reg(FirstVirtual + N); }

TEST(M68, AllowsMemoryOperandsInAlu) {
  M68Target T;
  Operand Mem = Operand::mem(RegFP, -4, 4);
  EXPECT_TRUE(T.isLegal(Insn::binary(Opcode::Add, vr(0), vr(1), Mem)));
  EXPECT_TRUE(T.isLegal(Insn::binary(Opcode::Div, vr(0), vr(0), Mem)));
  EXPECT_TRUE(T.isLegal(Insn::compare(Mem, Operand::imm(5))));
  // Memory-to-memory move (the paper's "B[a[0]]=B[a[0]+1]").
  EXPECT_TRUE(T.isLegal(
      Insn::move(Operand::mem(4, 0, 1), Operand::mem(4, 1, 1))));
  // Two-address memory ALU form.
  EXPECT_TRUE(T.isLegal(Insn::binary(Opcode::Add, Mem, Mem, Operand::imm(1))));
  // But not a three-operand memory form.
  EXPECT_FALSE(T.isLegal(
      Insn::binary(Opcode::Add, Mem, Operand::mem(RegFP, -8, 4),
                   Operand::imm(1))));
  // Nor two memory sources.
  EXPECT_FALSE(T.isLegal(Insn::binary(Opcode::Add, vr(0), Mem,
                                      Operand::mem(RegFP, -8, 4))));
}

TEST(M68, ScaledIndexAddressing) {
  M68Target T;
  EXPECT_TRUE(T.isLegalAddress(Operand::mem(4, 8, 4, 5, 4, 0)));
  EXPECT_FALSE(T.isLegalAddress(Operand::mem(4, 8, 4, 5, 8, 0)));
  EXPECT_FALSE(T.hasDelaySlots());
}

TEST(Sparc, LoadStoreOnly) {
  SparcTarget T;
  Operand Mem = Operand::mem(RegFP, -4, 4);
  EXPECT_TRUE(T.isLegal(Insn::move(vr(0), Mem)));             // load
  EXPECT_TRUE(T.isLegal(Insn::move(Mem, vr(0))));             // store
  EXPECT_FALSE(T.isLegal(Insn::move(Mem, Operand::imm(1))));  // store-imm
  EXPECT_FALSE(T.isLegal(Insn::binary(Opcode::Add, vr(0), vr(1), Mem)));
  EXPECT_FALSE(T.isLegal(Insn::compare(Mem, Operand::imm(0))));
  EXPECT_TRUE(T.isLegal(
      Insn::binary(Opcode::Add, vr(0), vr(1), Operand::imm(42))));
  EXPECT_FALSE(T.isLegal(
      Insn::binary(Opcode::Add, vr(0), Operand::imm(42), vr(1))));
  EXPECT_TRUE(T.hasDelaySlots());
}

TEST(Sparc, AddressingModes) {
  SparcTarget T;
  EXPECT_TRUE(T.isLegalAddress(Operand::mem(4, 1000, 4)));
  EXPECT_FALSE(T.isLegalAddress(Operand::mem(4, 0, 4, 5, 1)));   // indexed
  EXPECT_FALSE(T.isLegalAddress(Operand::mem(4, 0, 4, -1, 1, 0))); // symbol
  // Lea materializes a symbol address (sethi/or), nothing else.
  EXPECT_TRUE(
      T.isLegal(Insn::lea(vr(0), Operand::mem(-1, 0, 4, -1, 1, 3))));
  EXPECT_FALSE(T.isLegal(Insn::lea(vr(0), Operand::mem(4, 8, 4))));
}

TEST(Legalize, FunctionBecomesFullyLegal) {
  // Generate naive RTL with rich addressing and check every instruction is
  // legal after legalization, on both targets.
  const char *Src = R"(
    int g[10][10];
    char s[20];
    int main() {
      int i = 3, j = 4;
      g[i][j] = s[i] + g[j][i];
      s[j] = g[i][j] * 2;
      return g[3][4];
    }
  )";
  for (TargetKind K : {TargetKind::M68, TargetKind::Sparc}) {
    Program P;
    std::string Err;
    ASSERT_TRUE(frontend::compileToRtl(Src, P, Err)) << Err;
    auto T = createTarget(K);
    for (auto &F : P.Functions) {
      T->legalizeFunction(*F);
      F->verify();
      for (int B = 0; B < F->size(); ++B)
        for (const Insn &I : F->block(B)->Insns)
          EXPECT_TRUE(T->isLegal(I)) << toString(I);
    }
  }
}

TEST(Legalize, PreservesSemantics) {
  const char *Src = R"(
    int tab[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    int main() {
      int i, s = 0;
      for (i = 0; i < 8; i++)
        s += tab[i] * i;
      return s;
    }
  )";
  int32_t Expected = 0;
  for (int I = 0; I < 8; ++I)
    Expected += (I + 1) * I;
  for (TargetKind K : {TargetKind::M68, TargetKind::Sparc}) {
    Program P;
    std::string Err;
    ASSERT_TRUE(frontend::compileToRtl(Src, P, Err)) << Err;
    auto T = createTarget(K);
    for (auto &F : P.Functions)
      T->legalizeFunction(*F);
    ease::RunOptions RO;
    ease::RunResult R = ease::run(P, RO);
    ASSERT_TRUE(R.ok()) << R.TrapMessage;
    EXPECT_EQ(R.ExitCode, Expected);
  }
}

TEST(Legalize, RiscCodeIsLargerThanCisc) {
  // The mechanism behind Table 5's target differences.
  const char *Src = R"(
    int a[32];
    int main() {
      int i;
      for (i = 0; i < 32; i++)
        a[i] = a[i] + i;
      return a[31];
    }
  )";
  driver::Compilation M68C = driver::compile(Src, TargetKind::M68,
                                             opt::OptLevel::Simple);
  driver::Compilation SparcC = driver::compile(Src, TargetKind::Sparc,
                                               opt::OptLevel::Simple);
  ASSERT_TRUE(M68C.ok() && SparcC.ok());
  EXPECT_LT(M68C.Static.Instructions, SparcC.Static.Instructions);
}

TEST(TargetFactory, CreatesBoth) {
  EXPECT_EQ(createTarget(TargetKind::M68)->name(), "Motorola 68020");
  EXPECT_EQ(createTarget(TargetKind::Sparc)->name(), "Sun SPARC");
  EXPECT_EQ(createTarget(TargetKind::Sparc)->kind(), TargetKind::Sparc);
  EXPECT_GT(createTarget(TargetKind::Sparc)->numAllocatableRegs(),
            createTarget(TargetKind::M68)->numAllocatableRegs());
}

} // namespace
