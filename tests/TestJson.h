//===- TestJson.h - Minimal JSON validator for tests ------------*- C++ -*-===//
//
// Part of the coderep project: a reproduction of Mueller & Whalley,
// "Avoiding Unconditional Jumps by Code Replication", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recursive-descent JSON syntax validator, enough to certify that the
/// observability exports (Chrome trace, metrics, speedscope, journal
/// lines) are well-formed without depending on an external parser. Shared
/// by TraceTest, ProfilerTest, JournalTest, and CrashFlushTest.
///
//===----------------------------------------------------------------------===//

#ifndef CODEREP_TESTS_TESTJSON_H
#define CODEREP_TESTS_TESTJSON_H

#include <cctype>
#include <cstring>
#include <string>

namespace coderep::tests {

class JsonValidator {
public:
  explicit JsonValidator(const std::string &S) : S(S) {}

  bool validate() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  bool value() {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      unsigned char C = static_cast<unsigned char>(S[Pos]);
      if (C < 0x20)
        return false; // control chars must be escaped
      if (C == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
        char E = S[Pos];
        if (E == 'u') {
          for (int I = 0; I < 4; ++I) {
            ++Pos;
            if (Pos >= S.size() ||
                !std::isxdigit(static_cast<unsigned char>(S[Pos])))
              return false;
          }
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // closing quote
    return true;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    if (peek() == '.') {
      ++Pos;
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    return Pos > Start && S[Pos - 1] != '-';
  }

  bool literal(const char *L) {
    size_t Len = std::strlen(L);
    if (S.compare(Pos, Len, L) != 0)
      return false;
    Pos += Len;
    return true;
  }

  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }
  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  const std::string &S;
  size_t Pos = 0;
};

} // namespace coderep::tests

#endif // CODEREP_TESTS_TESTJSON_H
