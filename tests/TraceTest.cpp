//===- TraceTest.cpp - Observability-layer unit tests ----------------------------===//
//
// Covers the obs/ subsystem: the golden decision-log format produced by
// the replication passes on hand-built flow graphs (pinned byte-for-byte;
// formatDecision is deterministic by construction), validity of the
// Chrome trace-event JSON export under concurrent recording, and the
// guarantee that a disabled sink changes nothing about the compiled code.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "cfg/FunctionPrinter.h"
#include "obs/Metrics.h"
#include "obs/ScopedTimer.h"
#include "replicate/Replication.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include "TestJson.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <map>
#include <vector>

using namespace coderep;
using namespace coderep::cfg;
using namespace coderep::obs;
using namespace coderep::rtl;
using coderep::tests::JsonValidator;

namespace {

Operand vr(int N) { return Operand::reg(FirstVirtual + N); }

/// While-loop shape (the paper's Figure 1 situation: an unconditional back
/// jump closing a natural loop): pre, header (test, exit), body (jump
/// back), exit.
std::unique_ptr<Function> whileLoop() {
  auto F = std::make_unique<Function>("w");
  int LH = F->freshLabel(), LB = F->freshLabel(), LE = F->freshLabel();
  BasicBlock *Pre = F->appendBlock();
  Pre->Insns = {Insn::move(Operand::reg(RegFP), Operand::reg(RegSP)),
                Insn::move(vr(0), Operand::imm(0)),
                Insn::move(vr(1), Operand::imm(0))};
  BasicBlock *H = F->appendBlockWithLabel(LH);
  H->Insns = {Insn::compare(vr(0), Operand::imm(10)),
              Insn::condJump(CondCode::Ge, LE)};
  BasicBlock *Body = F->appendBlockWithLabel(LB);
  Body->Insns = {Insn::binary(Opcode::Add, vr(1), vr(1), vr(0)),
                 Insn::binary(Opcode::Add, vr(0), vr(0), Operand::imm(1)),
                 Insn::jump(LH)};
  BasicBlock *Exit = F->appendBlockWithLabel(LE);
  Exit->Insns = {Insn::move(Operand::reg(RegRV), vr(1)),
                 Insn::move(Operand::reg(RegSP), Operand::reg(RegFP)),
                 Insn::ret()};
  F->verify();
  return F;
}

/// The Figure-2 shape: two natural loops sharing blocks, where replicating
/// the jump L3->L1 partially copies the inner loop and step 5 retargets
/// branches into the copy.
std::unique_ptr<Function> figure2() {
  auto F = std::make_unique<Function>("fig2");
  int L[5];
  for (int I = 1; I <= 4; ++I)
    L[I] = F->freshLabel();
  auto add = [&](int Label, std::vector<Insn> Insns) {
    BasicBlock *B = F->appendBlockWithLabel(Label);
    B->Insns = std::move(Insns);
  };
  Operand R0 = vr(0);
  add(L[1], {Insn::binary(Opcode::Add, R0, R0, Operand::imm(1)),
             Insn::compare(R0, Operand::imm(50)),
             Insn::condJump(CondCode::Ge, L[4])});
  add(L[2], {Insn::binary(Opcode::Add, R0, R0, Operand::imm(2)),
             Insn::compare(R0, Operand::imm(10)),
             Insn::condJump(CondCode::Lt, L[1])});
  add(L[3], {Insn::binary(Opcode::Add, R0, R0, Operand::imm(3)),
             Insn::jump(L[1])});
  add(L[4], {Insn::move(Operand::reg(RegRV), R0),
             Insn::move(Operand::reg(RegSP), Operand::reg(RegFP)),
             Insn::ret()});
  F->verify();
  return F;
}

/// Renders every decision in \p Sink as formatDecision lines.
std::vector<std::string> decisionLines(const TraceSink &Sink) {
  std::vector<std::string> Out;
  for (const ReplicationDecision &D : Sink.decisions())
    Out.push_back(formatDecision(D));
  return Out;
}


//===----------------------------------------------------------------------===//
// Golden decision logs
//===----------------------------------------------------------------------===//

TEST(DecisionLogTest, GoldenWhileLoopJumps) {
  auto F = whileLoop();
  TraceSink Sink;
  replicate::ReplicationOptions Options;
  Options.Trace.Sink = &Sink;
  replicate::ReplicationStats Stats;
  EXPECT_TRUE(replicate::runJumps(*F, Options, &Stats));
  EXPECT_EQ(Stats.JumpsReplaced, 1);

  // The back jump L1->L0 is replaced by a copy of the 2-RTL header with
  // the test reversed; the "favoring loops" candidate (link to the
  // positionally next block) wins over the return-terminated sequence on
  // cost. Byte-for-byte golden: the format is deterministic and carries
  // no timestamps.
  EXPECT_EQ(decisionLines(Sink),
            (std::vector<std::string>{
                "decision#0 fn=w round=1 jump=L1->L0 outcome=replaced "
                "chosen=loop loops=0 retargets=0 stubs=0 rtls=2 "
                "candidates=[loop cost=2 path=L0 fate=applied; "
                "return cost=5 path=L0,L2 fate=not-tried]"}));
}

TEST(DecisionLogTest, GoldenFigure2StepFiveRetargets) {
  auto F = figure2();
  TraceSink Sink;
  replicate::ReplicationOptions Options;
  Options.Trace.Sink = &Sink;
  replicate::ReplicationStats Stats;
  EXPECT_TRUE(replicate::runJumps(*F, Options, &Stats));

  // The outer back jump (printed L2->L0: labels are 0-based) replicates
  // the shared header, and one branch into the partial copy is retargeted
  // by step 5.
  EXPECT_EQ(decisionLines(Sink),
            (std::vector<std::string>{
                "decision#0 fn=fig2 round=1 jump=L2->L0 outcome=replaced "
                "chosen=loop loops=0 retargets=1 stubs=0 rtls=3 "
                "candidates=[loop cost=3 path=L0 fate=applied; "
                "return cost=6 path=L0,L3 fate=not-tried]"}));
  EXPECT_EQ(Stats.Step5Retargets, 1);
}

TEST(DecisionLogTest, GoldenWhileLoopLoops) {
  auto F = whileLoop();
  TraceSink Sink;
  TraceConfig Trace;
  Trace.Sink = &Sink;
  replicate::ReplicationStats Stats;
  EXPECT_TRUE(replicate::runLoops(*F, &Stats, Trace));
  EXPECT_EQ(Stats.JumpsReplaced, 1);

  // LOOPS considers exactly one candidate: the loop's termination test.
  EXPECT_EQ(decisionLines(Sink),
            (std::vector<std::string>{
                "decision#0 fn=w round=1 jump=L1->L0 outcome=replaced "
                "chosen=loop loops=0 retargets=0 stubs=0 rtls=2 "
                "candidates=[loop cost=2 path=L0 fate=applied]"}));
}

TEST(DecisionLogTest, DecisionIdsAreDense) {
  auto F = figure2();
  TraceSink Sink;
  replicate::ReplicationOptions Options;
  Options.Trace.Sink = &Sink;
  replicate::runJumps(*F, Options);
  auto G = whileLoop();
  replicate::runJumps(*G, Options);

  std::vector<ReplicationDecision> Ds = Sink.decisions();
  ASSERT_FALSE(Ds.empty());
  for (size_t I = 0; I < Ds.size(); ++I)
    EXPECT_EQ(Ds[I].Id, I);
}

TEST(DecisionLogTest, DisabledSinkProducesIdenticalCode) {
  auto Traced = whileLoop();
  auto Plain = Traced->clone();
  TraceSink Sink;
  replicate::ReplicationOptions Options;
  Options.Trace.Sink = &Sink;
  replicate::runJumps(*Traced, Options);
  replicate::runJumps(*Plain); // default options: tracing disabled
  EXPECT_EQ(toString(*Traced), toString(*Plain));

  auto Traced2 = figure2();
  auto Plain2 = Traced2->clone();
  replicate::runJumps(*Traced2, Options);
  replicate::runJumps(*Plain2);
  EXPECT_EQ(toString(*Traced2), toString(*Plain2));
}

//===----------------------------------------------------------------------===//
// Chrome-trace export
//===----------------------------------------------------------------------===//

TEST(ChromeTraceTest, ExportIsValidJson) {
  auto F = figure2();
  TraceSink Sink;
  replicate::ReplicationOptions Options;
  Options.Trace.Sink = &Sink;
  replicate::runJumps(*F, Options);
  Sink.instant("checkpoint", "\"note\": \"quotes \\\" and \\\\ survive\"");
  Sink.counter("blocks", F->size());

  std::string Json = Sink.chromeTraceJson();
  EXPECT_TRUE(JsonValidator(Json).validate()) << Json;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"thread_name\""), std::string::npos);
}

TEST(ChromeTraceTest, EscapeJsonHandlesSpecials) {
  EXPECT_EQ(escapeJson("plain"), "plain");
  EXPECT_EQ(escapeJson("a\"b"), "a\\\"b");
  EXPECT_EQ(escapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(escapeJson("a\nb"), "a\\nb");
  EXPECT_EQ(escapeJson(std::string("a\x01z")), "a\\u0001z");
}

TEST(ChromeTraceTest, BalancedSpansUnderThreadPoolConcurrency) {
  TraceSink Sink;
  constexpr unsigned Threads = 8;
  constexpr size_t Tasks = 64;
  ThreadPool Pool(Threads);
  Pool.parallelFor(Tasks, [&](size_t I) {
    ScopedTimer Outer(&Sink, format("task %zu", I),
                      nullptr, format("\"task\": %zu", I));
    for (int J = 0; J < 3; ++J) {
      ScopedTimer Inner(&Sink, "inner");
      Sink.instant("tick");
    }
    Sink.metrics().add("tasks.done", 1);
  });

  // Per thread track, begins and ends must pair up LIFO.
  std::map<uint32_t, std::vector<std::string>> Stacks;
  int Begins = 0, Ends = 0;
  for (const TraceEvent &E : Sink.events()) {
    auto &Stack = Stacks[E.Tid];
    switch (E.Phase) {
    case EventPhase::Begin:
      ++Begins;
      Stack.push_back(E.Name);
      break;
    case EventPhase::End:
      ++Ends;
      ASSERT_FALSE(Stack.empty());
      EXPECT_EQ(Stack.back(), E.Name);
      Stack.pop_back();
      break;
    default:
      break;
    }
  }
  for (const auto &[Tid, Stack] : Stacks)
    EXPECT_TRUE(Stack.empty()) << "unbalanced spans on tid " << Tid;
  EXPECT_EQ(Begins, Ends);
  EXPECT_EQ(Begins, static_cast<int>(Tasks * 4)); // 1 outer + 3 inner each
  EXPECT_EQ(Sink.metrics().value("tasks.done"),
            static_cast<int64_t>(Tasks));

  std::string Json = Sink.chromeTraceJson();
  EXPECT_TRUE(JsonValidator(Json).validate());
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(MetricsTest, AddSetSnapshotAndJson) {
  MetricsRegistry M;
  M.add("b.count", 2);
  M.add("b.count", 3);
  M.set("a.gauge", -7);
  EXPECT_EQ(M.value("b.count"), 5);
  EXPECT_EQ(M.value("a.gauge"), -7);
  EXPECT_EQ(M.value("absent"), 0);

  TraceSink Sink;
  Sink.metrics().add("z.last", 1);
  Sink.metrics().add("a.first", 2);
  std::string Json = Sink.metricsJson();
  EXPECT_TRUE(JsonValidator(Json).validate()) << Json;
  // Keys export in sorted order, so the output is diffable.
  EXPECT_LT(Json.find("a.first"), Json.find("z.last"));
}

TEST(MetricsTest, TypedEntriesCarryUnitAndType) {
  TraceSink Sink;
  Sink.metrics().add("driver.functions", 3);       // counter, unitless
  Sink.metrics().add("pipeline.fixpoint_us.x", 9); // counter, microseconds
  Sink.metrics().set("arena.pool_bytes", 128);     // gauge, bytes
  Sink.histograms().record("fn.compile_us", 100);
  Sink.histograms().record("fn.compile_us", 300);

  std::string Json = Sink.metricsJson();
  EXPECT_TRUE(JsonValidator(Json).validate()) << Json;
  // Flat entries: value plus machine-readable type and unit.
  EXPECT_NE(Json.find("\"driver.functions\": {\"value\": 3, "
                      "\"type\": \"counter\", \"unit\": \"count\"}"),
            std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"pipeline.fixpoint_us.x\": {\"value\": 9, "
                      "\"type\": \"counter\", \"unit\": \"us\"}"),
            std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"arena.pool_bytes\": {\"value\": 128, "
                      "\"type\": \"gauge\", \"unit\": \"bytes\"}"),
            std::string::npos)
      << Json;
  // Histogram entries interleave into the same sorted map with quantiles.
  EXPECT_NE(Json.find("\"fn.compile_us\": {\"type\": \"histogram\", "
                      "\"unit\": \"us\", \"count\": 2"),
            std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"p99\""), std::string::npos);
  // Sorted keys: histogram and flat entries share one ordering.
  EXPECT_LT(Json.find("arena.pool_bytes"), Json.find("driver.functions"));
  EXPECT_LT(Json.find("driver.functions"), Json.find("fn.compile_us"));
}

TEST(MetricsTest, EventsDisabledKeepsMetricsAndHistogramsLive) {
  TraceSink Sink;
  Sink.setEventsEnabled(false);
  {
    ScopedTimer T(&Sink, "muted span");
    Sink.instant("muted instant");
    Sink.counter("muted counter", 1);
  }
  Sink.metrics().add("still.counted", 1);
  Sink.histograms().record("still.recorded_us", 5);
  EXPECT_TRUE(Sink.events().empty());
  EXPECT_EQ(Sink.metrics().value("still.counted"), 1);
  EXPECT_EQ(Sink.histograms().get("still.recorded_us").count(), 1);
}

TEST(MetricsTest, ScopedTimerAccumulatesWithoutSink) {
  int64_t Us = 0;
  {
    ScopedTimer T(nullptr, "unused", &Us);
    volatile int Spin = 0;
    for (int I = 0; I < 100000; ++I)
      Spin = Spin + I;
    (void)Spin;
  }
  EXPECT_GE(Us, 0);
}

} // namespace
