//===- VerifyTest.cpp - Translation-validation subsystem tests --------------------===//
//
// End-to-end tests of the verify/ subsystem: the per-pass execution oracle,
// the CFG bisimulation validator for replication rewrites, and the
// miscompile reducer. The mutation tests drive the pipeline's hidden
// MutateForTesting flag to prove the oracle catches, attributes and
// shrinks a real (injected) miscompile.
//
//===----------------------------------------------------------------------===//

#include "verify/Bisim.h"
#include "verify/Oracle.h"
#include "verify/RandomProgram.h"
#include "verify/Reduce.h"

#include "Suite.h"
#include "cache/CompileCache.h"
#include "cfg/FunctionPrinter.h"
#include "opt/Pass.h"
#include "driver/Compiler.h"
#include "frontend/CodeGen.h"

#include <gtest/gtest.h>

using namespace coderep;
using namespace coderep::cfg;
using namespace coderep::driver;
using namespace coderep::rtl;
using namespace coderep::verify;

namespace {

TEST(Verify, GranularityParsing) {
  Granularity G = Granularity::Final;
  EXPECT_TRUE(parseGranularity("off", G));
  EXPECT_EQ(G, Granularity::Off);
  EXPECT_TRUE(parseGranularity("final", G));
  EXPECT_EQ(G, Granularity::Final);
  EXPECT_TRUE(parseGranularity("pass", G));
  EXPECT_EQ(G, Granularity::Pass);
  EXPECT_TRUE(parseGranularity("round", G));
  EXPECT_EQ(G, Granularity::Round);
  EXPECT_FALSE(parseGranularity("bogus", G));
  for (Granularity Each : {Granularity::Off, Granularity::Final,
                           Granularity::Pass, Granularity::Round}) {
    Granularity Back = Granularity::Off;
    ASSERT_TRUE(parseGranularity(granularityName(Each), Back));
    EXPECT_EQ(Back, Each);
  }
}

TEST(Verify, ReportFormatIsStable) {
  VerifyReport R;
  R.Function = "f0";
  R.Pass = "constant folding";
  R.Round = 2;
  R.Seed = 7;
  R.InputIndex = 1;
  R.Divergence = VerifyReport::Kind::ExitCode;
  R.Detail = "exit code 4 vs 9";
  EXPECT_EQ(formatReport(R),
            "verify mismatch: fn=f0 pass=constant folding round=2 seed=7 "
            "input=1 diverged=exit-code: exit code 4 vs 9");
}

Operand vr(int N) { return Operand::reg(FirstVirtual + N); }

/// A diamond: cmp; branch to the "2" arm on Eq (or as directed), else fall
/// through to the "1" arm. \p Reversed negates the condition; \p Swapped
/// also swaps which arm holds which constant, so Reversed+Swapped is the
/// paper's legal branch reversal and Reversed alone is a miscompile.
std::unique_ptr<Function> diamond(bool Reversed, bool Swapped) {
  auto F = std::make_unique<Function>("d");
  for (int I = 0; I < 4; ++I)
    F->freshVReg();
  int L = F->freshLabel();
  BasicBlock *B0 = F->appendBlock();
  B0->Insns.push_back(Insn::compare(vr(0), Operand::imm(0)));
  B0->Insns.push_back(
      Insn::condJump(Reversed ? CondCode::Ne : CondCode::Eq, L));
  BasicBlock *B1 = F->appendBlock();
  B1->Insns.push_back(
      Insn::move(Operand::reg(RegRV), Operand::imm(Swapped ? 2 : 1)));
  B1->Insns.push_back(Insn::ret());
  BasicBlock *B2 = F->appendBlockWithLabel(L);
  B2->Insns.push_back(
      Insn::move(Operand::reg(RegRV), Operand::imm(Swapped ? 1 : 2)));
  B2->Insns.push_back(Insn::ret());
  F->verify();
  return F;
}

TEST(Bisim, IdenticalFunctionsAreEquivalent) {
  auto A = diamond(false, false);
  BisimResult R = checkBisimulation(*A, *A->clone());
  EXPECT_TRUE(R.Equivalent) << R.Detail;
}

TEST(Bisim, ReversedBranchWithSwappedArmsIsEquivalent) {
  auto Before = diamond(false, false);
  auto After = diamond(true, true);
  BisimResult R = checkBisimulation(*Before, *After);
  EXPECT_TRUE(R.Equivalent) << R.Detail;
}

TEST(Bisim, ReversedBranchAloneIsRejected) {
  auto Before = diamond(false, false);
  auto After = diamond(true, false);
  BisimResult R = checkBisimulation(*Before, *After);
  EXPECT_FALSE(R.Equivalent);
  EXPECT_FALSE(R.Detail.empty());
}

TEST(Bisim, AcceptsEveryAppliedRewriteInTheSuite) {
  // Every replication decision applied while compiling the whole Table-3
  // suite, both targets, all three levels, must bisimulate. LOOPS/JUMPS
  // configs are where rewrites actually fire; SIMPLE rides along to prove
  // the validator is inert when replication is off.
  BisimValidator V;
  opt::PipelineOptions Opts;
  Opts.Replication.Validator = &V;
  for (const bench::BenchProgram &BP : bench::suite())
    for (target::TargetKind TK :
         {target::TargetKind::M68, target::TargetKind::Sparc})
      for (opt::OptLevel L : {opt::OptLevel::Simple, opt::OptLevel::Loops,
                              opt::OptLevel::Jumps}) {
        Compilation C = compile(BP.Source, TK, L, &Opts);
        ASSERT_TRUE(C.ok()) << BP.Name << ": " << C.Error;
      }
  EXPECT_GT(V.checks(), 0);
  EXPECT_TRUE(V.ok()) << V.failures().front();
}

TEST(Verify, OracleIsCleanOnRandomPrograms) {
  // Pass granularity over a few generated programs: every pass invocation
  // that changes a function re-executes it against the rolling baseline.
  for (uint64_t Seed : {1u, 2u, 3u}) {
    OracleOptions OO;
    OO.Gran = Granularity::Pass;
    Oracle O(OO);
    opt::PipelineOptions Opts;
    Opts.Verifier = &O;
    Compilation C = compile(randomProgram(Seed), target::TargetKind::M68,
                            opt::OptLevel::Jumps, &Opts);
    ASSERT_TRUE(C.ok()) << C.Error;
    EXPECT_GT(O.counters().Checks, 0) << "seed " << Seed;
    EXPECT_TRUE(O.ok()) << "seed " << Seed << ": "
                        << formatReport(O.reports().front());
  }
}

const char *MutationVictim = R"(
int f0(int a, int b) {
  if (a < b)
    return a;
  return b;
}
int main() {
  printf("%d\n", f0(3, 8));
  return 0;
}
)";

TEST(Verify, MutationIsCaughtAndAttributedAtPassGranularity) {
  OracleOptions OO;
  OO.Gran = Granularity::Pass;
  Oracle O(OO);
  opt::PipelineOptions Opts;
  Opts.Verifier = &O;
  Opts.MutateForTesting = true;
  // Drive the unfused schedule so every register pass is its own
  // checkpoint - the finest attribution the pipeline offers.
  Opts.FusedLocalSweep = false;
  Compilation C = compile(MutationVictim, target::TargetKind::M68,
                          opt::OptLevel::Jumps, &Opts);
  ASSERT_TRUE(C.ok()) << C.Error;
  EXPECT_FALSE(O.ok());
  ASSERT_FALSE(O.reports().empty());
  // Pass granularity pins the miscompile to the pass that introduced it:
  // the mutation rides the first constant-folding invocation.
  const VerifyReport R = O.reports().front();
  EXPECT_EQ(R.Function, "f0");
  EXPECT_EQ(R.Pass, "constant folding");
  EXPECT_FALSE(O.functionVerifiedClean("f0"));
  EXPECT_GT(O.counters().Mismatches, 0);
}

TEST(Verify, MutationUnderFusedSweepIsAttributedToTheFusedSlot) {
  OracleOptions OO;
  OO.Gran = Granularity::Pass;
  Oracle O(OO);
  opt::PipelineOptions Opts;
  Opts.Verifier = &O;
  Opts.MutateForTesting = true;
  ASSERT_TRUE(Opts.FusedLocalSweep); // the default schedule
  Compilation C = compile(MutationVictim, target::TargetKind::M68,
                          opt::OptLevel::Jumps, &Opts);
  ASSERT_TRUE(C.ok()) << C.Error;
  EXPECT_FALSE(O.ok());
  ASSERT_FALSE(O.reports().empty());
  // Under the fused sweep the constant-folding body runs inside the tail
  // segment, so the fused slot is the finest attribution unit available.
  const VerifyReport R = O.reports().front();
  EXPECT_EQ(R.Function, "f0");
  EXPECT_EQ(R.Pass, "fused local sweep");
  EXPECT_FALSE(O.functionVerifiedClean("f0"));
  EXPECT_GT(O.counters().Mismatches, 0);
}

TEST(Verify, MutationIsCaughtAtFinalGranularity) {
  OracleOptions OO;
  OO.Gran = Granularity::Final;
  Oracle O(OO);
  opt::PipelineOptions Opts;
  Opts.Verifier = &O;
  Opts.MutateForTesting = true;
  Compilation C = compile(MutationVictim, target::TargetKind::M68,
                          opt::OptLevel::Jumps, &Opts);
  ASSERT_TRUE(C.ok()) << C.Error;
  EXPECT_FALSE(O.ok());
  ASSERT_FALSE(O.reports().empty());
  EXPECT_EQ(O.reports().front().Pass, "final");
}

TEST(Verify, MutationReducesToSmallRepro) {
  ReduceOptions RO;
  RO.TK = target::TargetKind::M68;
  RO.Level = opt::OptLevel::Jumps;
  RO.Pipeline.MutateForTesting = true;
  ReduceResult R = reduce(MutationVictim, RO);
  ASSERT_TRUE(R.Mismatch);
  EXPECT_FALSE(R.Source.empty());
  EXPECT_FALSE(R.RtlDump.empty());
  EXPECT_LE(R.Blocks, 10);
  // The reduced source must itself still miscompile (reduce re-checks it,
  // but prove it from the outside too): reference vs. mutated pipeline.
  ease::RunResult Ref = compileAndRun(R.Source, RO.TK, opt::OptLevel::Simple);
  opt::PipelineOptions Bad;
  Bad.MutateForTesting = true;
  Compilation C = compile(R.Source, RO.TK, RO.Level, &Bad);
  ASSERT_TRUE(C.ok()) << C.Error;
  ease::RunResult Mut = ease::run(*C.Prog, {});
  EXPECT_TRUE(Ref.Output != Mut.Output || Ref.ExitCode != Mut.ExitCode ||
              Ref.TrapKind != Mut.TrapKind);
}

TEST(Verify, NoMismatchMeansNothingToReduce) {
  ReduceOptions RO;
  ReduceResult R = reduce("int main() { return 3; }", RO);
  EXPECT_FALSE(R.Mismatch);
}

TEST(Verify, CacheRecordsVerifiedEntries) {
  cache::PipelineCache Cache;
  const std::string Src = randomProgram(11);

  OracleOptions OO;
  OO.Gran = Granularity::Final;
  Oracle O1(OO);
  opt::PipelineOptions Opts;
  Opts.FunctionCache = &Cache;
  Opts.Verifier = &O1;
  Compilation C1 =
      compile(Src, target::TargetKind::Sparc, opt::OptLevel::Jumps, &Opts);
  ASSERT_TRUE(C1.ok()) << C1.Error;
  ASSERT_TRUE(O1.ok());
  EXPECT_GT(C1.Pipeline.FunctionCacheMisses, 0);
  // Every freshly stored body verified clean, so it was marked.
  EXPECT_EQ(Cache.verifiedEntries(), Cache.entries());
  EXPECT_GT(Cache.verifiedEntries(), 0u);

  // Second compile: hits bypass the pipeline entirely, so the verifier is
  // never consulted - the verified mark is what says the body was checked.
  Oracle O2(OO);
  Opts.Verifier = &O2;
  Compilation C2 =
      compile(Src, target::TargetKind::Sparc, opt::OptLevel::Jumps, &Opts);
  ASSERT_TRUE(C2.ok()) << C2.Error;
  EXPECT_GT(C2.Pipeline.FunctionCacheHits, 0);
  EXPECT_EQ(O2.counters().Checks, 0);
}

TEST(Verify, MutationChangesFunctionCacheKeys) {
  // MutateForTesting is semantic, so a mutated compile must not be served
  // a clean compile's cached body (or vice versa).
  cache::PipelineCache Cache;
  opt::PipelineOptions Opts;
  Opts.FunctionCache = &Cache;
  Compilation C1 = compile(MutationVictim, target::TargetKind::M68,
                           opt::OptLevel::Jumps, &Opts);
  ASSERT_TRUE(C1.ok());
  Opts.MutateForTesting = true;
  Compilation C2 = compile(MutationVictim, target::TargetKind::M68,
                           opt::OptLevel::Jumps, &Opts);
  ASSERT_TRUE(C2.ok());
  EXPECT_EQ(C2.Pipeline.FunctionCacheHits, 0);
}

TEST(Verify, RandomProgramsAreDeterministicPerSeed) {
  EXPECT_EQ(randomProgram(42), randomProgram(42));
  EXPECT_NE(randomProgram(1), randomProgram(2));
}

TEST(Verify, PipelineHandlesReducerShapedFunctions) {
  // The reducer feeds the optimizer shapes the frontend never emits: a
  // function stubbed to a bare return (no prologue) while ParamBytes and
  // frame metadata survive, and empty fall-through blocks. Regression for
  // register assignment inserting parameter loads after the terminator.
  Program P;
  std::string Err;
  ASSERT_TRUE(frontend::compileToRtl(MutationVictim, P, Err)) << Err;
  auto T = target::createTarget(target::TargetKind::M68);
  for (auto &F : P.Functions) {
    T->legalizeFunction(*F);
    F->verify();
  }
  Function &F0 = *P.Functions[0];
  ASSERT_EQ(F0.Name, "f0");
  F0.block(0)->Insns.assign(1, Insn::ret());
  while (F0.size() > 1)
    F0.eraseBlock(1);
  F0.noteRtlEdit();
  F0.verify();
  opt::PipelineOptions Opts;
  Opts.Level = opt::OptLevel::Jumps;
  opt::optimizeProgram(P, *T, Opts);
  for (const auto &F : P.Functions)
    F->verify();
}

} // namespace
